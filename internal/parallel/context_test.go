package parallel

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"bpagg/internal/core"
	"bpagg/internal/faultinject"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
)

// TestCtxVariantsMatchCore pins every Ctx driver against the serial core
// reference across layouts, thread counts, and kernels.
func TestCtxVariantsMatchCore(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(91))
	for _, sh := range []struct {
		n   int
		k   int
		sel float64
	}{
		{1, 8, 1}, {64 * 11, 25, 0.3}, {64*6 + 7, 12, 0.01}, {500, 8, 0}, {64 * 16, 7, 0.9},
	} {
		vals, f := fixture(rng, sh.n, sh.k, sh.sel)
		vcol := vbp.Pack(vals, sh.k, 4)
		hcol := hbp.Pack(vals, sh.k, hbp.DefaultTau(sh.k))
		u := core.Count(f)
		for _, o := range optsMatrix {
			if got, err := VBPSumCtx(ctx, vcol, f, o); err != nil || got != core.VBPSum(vcol, f) {
				t.Fatalf("VBPSumCtx %+v: got (%d,%v) want (%d,nil)", o, got, err, core.VBPSum(vcol, f))
			}
			wantMin, wantMinOK := core.VBPMin(vcol, f)
			if got, ok, err := VBPMinCtx(ctx, vcol, f, o); err != nil || got != wantMin || ok != wantMinOK {
				t.Fatalf("VBPMinCtx %+v: got (%d,%v,%v) want (%d,%v,nil)", o, got, ok, err, wantMin, wantMinOK)
			}
			wantMax, wantMaxOK := core.VBPMax(vcol, f)
			if got, ok, err := VBPMaxCtx(ctx, vcol, f, o); err != nil || got != wantMax || ok != wantMaxOK {
				t.Fatalf("VBPMaxCtx %+v: got (%d,%v,%v) want (%d,%v,nil)", o, got, ok, err, wantMax, wantMaxOK)
			}
			wantMed, wantMedOK := core.VBPMedian(vcol, f)
			if got, ok, err := VBPMedianCtx(ctx, vcol, f, o); err != nil || got != wantMed || ok != wantMedOK {
				t.Fatalf("VBPMedianCtx %+v: got (%d,%v,%v) want (%d,%v,nil)", o, got, ok, err, wantMed, wantMedOK)
			}
			wantAvg, wantAvgOK := core.VBPAvg(vcol, f)
			if got, ok, err := VBPAvgCtx(ctx, vcol, f, o); err != nil || got != wantAvg || ok != wantAvgOK {
				t.Fatalf("VBPAvgCtx %+v: got (%v,%v,%v) want (%v,%v,nil)", o, got, ok, err, wantAvg, wantAvgOK)
			}
			for _, r := range []uint64{0, 1, u, u + 1} {
				wr, wok := core.VBPRank(vcol, f, r)
				if got, ok, err := VBPRankCtx(ctx, vcol, f, r, o); err != nil || got != wr || ok != wok {
					t.Fatalf("VBPRankCtx(%d) %+v: got (%d,%v,%v) want (%d,%v,nil)", r, o, got, ok, err, wr, wok)
				}
			}

			if got, err := HBPSumCtx(ctx, hcol, f, o); err != nil || got != core.HBPSum(hcol, f) {
				t.Fatalf("HBPSumCtx %+v: got (%d,%v) want (%d,nil)", o, got, err, core.HBPSum(hcol, f))
			}
			wantMin, wantMinOK = core.HBPMin(hcol, f)
			if got, ok, err := HBPMinCtx(ctx, hcol, f, o); err != nil || got != wantMin || ok != wantMinOK {
				t.Fatalf("HBPMinCtx %+v: got (%d,%v,%v) want (%d,%v,nil)", o, got, ok, err, wantMin, wantMinOK)
			}
			wantMax, wantMaxOK = core.HBPMax(hcol, f)
			if got, ok, err := HBPMaxCtx(ctx, hcol, f, o); err != nil || got != wantMax || ok != wantMaxOK {
				t.Fatalf("HBPMaxCtx %+v: got (%d,%v,%v) want (%d,%v,nil)", o, got, ok, err, wantMax, wantMaxOK)
			}
			wantMed, wantMedOK = core.HBPMedian(hcol, f)
			if got, ok, err := HBPMedianCtx(ctx, hcol, f, o); err != nil || got != wantMed || ok != wantMedOK {
				t.Fatalf("HBPMedianCtx %+v: got (%d,%v,%v) want (%d,%v,nil)", o, got, ok, err, wantMed, wantMedOK)
			}
			wantAvg, wantAvgOK = core.HBPAvg(hcol, f)
			if got, ok, err := HBPAvgCtx(ctx, hcol, f, o); err != nil || got != wantAvg || ok != wantAvgOK {
				t.Fatalf("HBPAvgCtx %+v: got (%v,%v,%v) want (%v,%v,nil)", o, got, ok, err, wantAvg, wantAvgOK)
			}
			for _, r := range []uint64{0, 1, u, u + 1} {
				wr, wok := core.HBPRank(hcol, f, r)
				if got, ok, err := HBPRankCtx(ctx, hcol, f, r, o); err != nil || got != wr || ok != wok {
					t.Fatalf("HBPRankCtx(%d) %+v: got (%d,%v,%v) want (%d,%v,nil)", r, o, got, ok, err, wr, wok)
				}
			}
		}
	}
}

// TestCtxExpiredDeadline proves an already-expired deadline fails every
// driver with context.DeadlineExceeded before any segment is processed.
func TestCtxExpiredDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	vals, f := fixture(rng, 64*128, 16, 0.5)
	vcol := vbp.Pack(vals, 16, 4)
	hcol := hbp.Pack(vals, 16, hbp.DefaultTau(16))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	o := Options{Threads: 4}
	if _, err := VBPSumCtx(ctx, vcol, f, o); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("VBPSumCtx = %v, want DeadlineExceeded", err)
	}
	if _, _, err := VBPMedianCtx(ctx, vcol, f, o); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("VBPMedianCtx = %v, want DeadlineExceeded", err)
	}
	if _, err := HBPSumCtx(ctx, hcol, f, o); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("HBPSumCtx = %v, want DeadlineExceeded", err)
	}
	if _, _, err := HBPMedianCtx(ctx, hcol, f, o); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("HBPMedianCtx = %v, want DeadlineExceeded", err)
	}
}

// TestCtxCancelMidRank cancels from inside a worker (via the block-level
// fault hook) and requires the rank loop to abort and propagate the
// cancellation instead of finishing the radix descent.
func TestCtxCancelMidRank(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(93))
	vals, f := fixture(rng, 64*64, 20, 0.8)
	vcol := vbp.Pack(vals, 20, 4)
	ctx, cancel := context.WithCancel(context.Background())
	var fires atomic.Int32
	faultinject.Set(faultinject.SiteWorkerRange, func(args ...any) error {
		if fires.Add(1) == 3 {
			cancel() // takes effect at the next block's ctx check
		}
		return nil
	})
	_, _, err := VBPRankCtx(ctx, vcol, f, 1000, Options{Threads: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("VBPRankCtx after mid-run cancel = %v, want context.Canceled", err)
	}
}

// TestWorkerPanicRecovered injects a panic into one worker and checks it
// surfaces as *PanicError while every other worker still joins.
func TestWorkerPanicRecovered(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(94))
	vals, f := fixture(rng, 64*64, 16, 0.5)
	vcol := vbp.Pack(vals, 16, 4)
	var started, finished atomic.Int32
	faultinject.Set(faultinject.SiteWorkerStart, func(args ...any) error {
		started.Add(1)
		if args[0].(int) == 1 {
			panic("injected segment fault")
		}
		return nil
	})
	faultinject.Set(faultinject.SiteWorkerRange, func(args ...any) error {
		finished.Add(1)
		return nil
	})
	_, err := VBPSumCtx(context.Background(), vcol, f, Options{Threads: 4})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("VBPSumCtx with injected panic = %v, want *PanicError", err)
	}
	if pe.Worker != 1 || pe.Value != "injected segment fault" {
		t.Fatalf("PanicError = worker %d value %v, want worker 1 value %q", pe.Worker, pe.Value, "injected segment fault")
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	if started.Load() != 4 {
		t.Fatalf("started %d workers, want 4 (panicking worker must not strand the others)", started.Load())
	}
	// All non-panicking workers ran to completion before the error returned.
	if finished.Load() == 0 {
		t.Fatal("no healthy worker processed a block")
	}
}

// TestForEachRangeErrFirstErrorWins checks that the error of the lowest
// worker index is reported when several workers fail.
func TestForEachRangeErrFirstErrorWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	_, err := forEachRangeErr(context.Background(), 8, 4, func(w, lo, hi int) error {
		switch w {
		case 1:
			return errA
		case 3:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("forEachRangeErr = %v, want first-by-index error %v", err, errA)
	}
}

// TestForEachRangeErrBlocksAccumulate verifies a worker's fn sees its
// partition as contiguous, gap-free blocks covering every segment once.
func TestForEachRangeErrBlocksAccumulate(t *testing.T) {
	const nseg = workerBlock*2 + 17
	var covered atomic.Int64
	_, err := forEachRangeErr(context.Background(), nseg, 3, func(w, lo, hi int) error {
		if hi-lo > workerBlock || lo >= hi {
			t.Errorf("bad block [%d,%d)", lo, hi)
		}
		covered.Add(int64(hi - lo))
		return nil
	})
	if err != nil {
		t.Fatalf("forEachRangeErr = %v", err)
	}
	if covered.Load() != nseg {
		t.Fatalf("blocks covered %d segments, want %d", covered.Load(), nseg)
	}
}

// TestPartitionDegenerateInputs covers nseg=0, threads <= 0, and
// threads > nseg: the partition must always cover [0, nseg) exactly with
// at least one range and no empty tail ranges beyond nseg=0.
func TestPartitionDegenerateInputs(t *testing.T) {
	for _, c := range []struct{ nseg, n int }{
		{0, 0}, {0, 4}, {0, -2}, {5, 0}, {5, -1}, {3, 100}, {1, 1},
	} {
		parts := partition(c.nseg, c.n)
		if len(parts) < 1 {
			t.Fatalf("partition(%d,%d) returned no ranges", c.nseg, c.n)
		}
		if c.nseg > 0 && len(parts) > c.nseg {
			t.Fatalf("partition(%d,%d) made %d ranges, more than segments", c.nseg, c.n, len(parts))
		}
		last, covered := 0, 0
		for _, p := range parts {
			if p[0] != last || p[1] < p[0] {
				t.Fatalf("partition(%d,%d) = %v: gap or inverted range", c.nseg, c.n, parts)
			}
			covered += p[1] - p[0]
			last = p[1]
		}
		if covered != c.nseg || last != c.nseg {
			t.Fatalf("partition(%d,%d) = %v covers %d, want %d", c.nseg, c.n, parts, covered, c.nseg)
		}
	}
}

// TestThreadCountDeterminism requires Threads=1 and Threads=8 (and the
// wide kernels) to produce bit-identical SUM/MIN/MAX/MEDIAN results.
func TestThreadCountDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	vals, f := fixture(rng, 64*300+13, 21, 0.6)
	serial := Options{Threads: 1}
	for _, o := range []Options{{Threads: 8}, {Threads: 8, Wide: true}} {
		vcol := vbp.Pack(vals, 21, 4)
		if a, b := VBPSum(vcol, f, serial), VBPSum(vcol, f, o); a != b {
			t.Fatalf("VBPSum differs: serial %d, %+v %d", a, o, b)
		}
		a1, aok := VBPMin(vcol, f, serial)
		b1, bok := VBPMin(vcol, f, o)
		if a1 != b1 || aok != bok {
			t.Fatalf("VBPMin differs: serial (%d,%v), %+v (%d,%v)", a1, aok, o, b1, bok)
		}
		a1, aok = VBPMax(vcol, f, serial)
		b1, bok = VBPMax(vcol, f, o)
		if a1 != b1 || aok != bok {
			t.Fatalf("VBPMax differs: serial (%d,%v), %+v (%d,%v)", a1, aok, o, b1, bok)
		}
		a1, aok = VBPMedian(vcol, f, serial)
		b1, bok = VBPMedian(vcol, f, o)
		if a1 != b1 || aok != bok {
			t.Fatalf("VBPMedian differs: serial (%d,%v), %+v (%d,%v)", a1, aok, o, b1, bok)
		}

		hcol := hbp.Pack(vals, 21, hbp.DefaultTau(21))
		if a, b := HBPSum(hcol, f, serial), HBPSum(hcol, f, o); a != b {
			t.Fatalf("HBPSum differs: serial %d, %+v %d", a, o, b)
		}
		a1, aok = HBPMedian(hcol, f, serial)
		b1, bok = HBPMedian(hcol, f, o)
		if a1 != b1 || aok != bok {
			t.Fatalf("HBPMedian differs: serial (%d,%v), %+v (%d,%v)", a1, aok, o, b1, bok)
		}
	}
}
