// Package parallel implements multi-threaded drivers for the bit-parallel
// aggregation kernels (paper §IV-B): the column's segments are partitioned
// across worker goroutines, each worker runs the serial (package core) or
// wide-word (package wide) kernel over its partition, and the partial
// results combine at the end.
//
// SUM/MIN/MAX decompose freely. MEDIAN (and general r-selection) has the
// synchronization point the paper describes: every radix step needs the
// global candidate counter (VBP) or merged histogram (HBP) before any
// worker may refine its candidates, so workers rendezvous once per step.
package parallel

import (
	"sync"

	"bpagg/internal/metrics"
)

// Options selects the execution strategy.
type Options struct {
	// Threads is the number of worker goroutines; values < 2 mean serial.
	Threads int
	// Wide selects the 256-bit wide-word kernels of package wide.
	Wide bool
	// Stats, when non-nil, receives one ExecStats batch per driver call
	// (segments aggregated, words touched, radix rounds, busy/wall
	// time). Enabling collection routes even Threads=1 calls through the
	// partitioned path so the counters are computed uniformly; nil (the
	// default) leaves every code path exactly as without collection.
	Stats *metrics.Collector
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// partition splits [0, nseg) into at most n contiguous ranges of nearly
// equal size.
func partition(nseg, n int) [][2]int {
	if n > nseg {
		n = nseg
	}
	if n < 1 {
		n = 1
	}
	out := make([][2]int, 0, n)
	base, rem := nseg/n, nseg%n
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// forEachRange runs fn over each partition range on its own goroutine and
// waits for all of them.
func forEachRange(nseg, threads int, fn func(worker, segLo, segHi int)) int {
	parts := partition(nseg, threads)
	var wg sync.WaitGroup
	for w, p := range parts {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, p[0], p[1])
	}
	wg.Wait()
	return len(parts)
}
