package parallel

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"bpagg/internal/faultinject"
)

// PanicError is a worker panic recovered by the error-returning drivers.
// One bad segment (or an injected fault) surfaces as an error on the
// calling goroutine instead of crashing the process; the original panic
// value and stack are preserved for diagnosis.
type PanicError struct {
	Worker int
	Value  any
	Stack  []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker %d panicked: %v", e.Worker, e.Value)
}

// workerBlock is the number of segments a worker processes between
// cancellation checks. A segment is 64 tuples, so 4096 segments ≈ 256K
// tuples per check: coarse enough that the ctx.Err atomic load is free
// relative to kernel work, fine enough that cancellation lands in well
// under a millisecond of residual work per worker.
const workerBlock = 4096

// forEachRangeErr is the hardened twin of forEachRange: it runs fn over
// each partition range on its own goroutine, slicing every range into
// workerBlock-segment blocks with a ctx check before each block, and
// recovers worker panics into *PanicError. All workers are always joined
// — an error or panic in one worker never strands the others — and the
// first error (by worker index) is returned after the join.
//
// Because a worker may call fn several times with sub-ranges of its
// partition, fn must accumulate into per-worker state rather than
// overwrite it.
func forEachRangeErr(ctx context.Context, nseg, threads int, fn func(worker, segLo, segHi int) error) (int, error) {
	parts := partition(nseg, threads)
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for w, p := range parts {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = &PanicError{Worker: w, Value: r, Stack: debug.Stack()}
				}
			}()
			if err := faultinject.Fire(faultinject.SiteWorkerStart, w); err != nil {
				errs[w] = err
				return
			}
			for lo < hi {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				if err := faultinject.Fire(faultinject.SiteWorkerRange, w); err != nil {
					errs[w] = err
					return
				}
				end := lo + workerBlock
				if end > hi {
					end = hi
				}
				if err := fn(w, lo, end); err != nil {
					errs[w] = err
					return
				}
				lo = end
			}
		}(w, p[0], p[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return len(parts), err
		}
	}
	return len(parts), nil
}
