package parallel

import (
	"context"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/metrics"
	"bpagg/internal/wide"
)

// HBPSumCtx computes SUM over an HBP column, honoring ctx.
func HBPSumCtx(ctx context.Context, col *hbp.Column, f *bitvec.Bitmap, o Options) (uint64, error) {
	if core.SumOverflowPossible(col.K(), col.Len()) {
		return hbpSumCtx128(ctx, col, f, o)
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	partials := make([]uint64, o.threads())
	_, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
		t0 := statsNow(ws)
		if o.Wide {
			partials[w] += wide.HBPSumRange(col, f, lo, hi)
		} else {
			partials[w] += core.HBPSumRange(col, f, lo, hi)
		}
		if ws != nil {
			hbpCollectDense(ws, w, col, f, lo, hi, t0)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var sum uint64
	for _, p := range partials {
		sum += p
	}
	o.statsEnd(ws, start, metrics.ExecStats{})
	return sum, nil
}

// HBPMinCtx computes MIN over an HBP column, honoring ctx; ok is false
// when no tuple passes the filter.
func HBPMinCtx(ctx context.Context, col *hbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool, error) {
	return hbpExtremeCtx(ctx, col, f, o, true)
}

// HBPMaxCtx computes MAX over an HBP column, honoring ctx.
func HBPMaxCtx(ctx context.Context, col *hbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool, error) {
	return hbpExtremeCtx(ctx, col, f, o, false)
}

func hbpExtremeCtx(ctx context.Context, col *hbp.Column, f *bitvec.Bitmap, o Options, wantMin bool) (uint64, bool, error) {
	if !f.Any() {
		return 0, false, nil
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	var temps [][]uint64
	if o.Wide {
		workerTemps := make([]wide.HBPExtremeTemps, o.threads())
		for w := range workerTemps {
			workerTemps[w] = wide.NewHBPExtremeTemps(col, wantMin)
		}
		used, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
			t0 := statsNow(ws)
			wide.HBPFoldExtremeRange(col, f, &workerTemps[w], wantMin, lo, hi)
			if ws != nil {
				hbpCollectDense(ws, w, col, f, lo, hi, t0)
			}
			return nil
		})
		if err != nil {
			return 0, false, err
		}
		for w := 0; w < used; w++ {
			temps = append(temps, workerTemps[w][:]...)
		}
	} else {
		workerTemps := make([][]uint64, o.threads())
		for w := range workerTemps {
			workerTemps[w] = core.NewHBPExtremeTemp(col, wantMin)
		}
		used, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
			t0 := statsNow(ws)
			core.HBPFoldExtreme(col, f, workerTemps[w], wantMin, lo, hi)
			if ws != nil {
				hbpCollectDense(ws, w, col, f, lo, hi, t0)
			}
			return nil
		})
		if err != nil {
			return 0, false, err
		}
		temps = workerTemps[:used]
	}
	v := core.HBPFinishExtreme(col, temps, wantMin)
	o.statsEnd(ws, start, metrics.ExecStats{})
	return v, true, nil
}

// HBPMedianCtx computes the lower MEDIAN, honoring ctx.
func HBPMedianCtx(ctx context.Context, col *hbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool, error) {
	u := core.Count(f)
	if u == 0 {
		return 0, false, nil
	}
	return HBPRankCtx(ctx, col, f, (u+1)/2, o)
}

// HBPRankCtx computes the r-th smallest filtered value, honoring ctx.
// Cancellation is checked at every histogram rendezvous (per bit-group
// chunk) in addition to the per-block checks inside each scan.
func HBPRankCtx(ctx context.Context, col *hbp.Column, f *bitvec.Bitmap, r uint64, o Options) (uint64, bool, error) {
	u := core.Count(f)
	if r == 0 || r > u {
		return 0, false, nil
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	v := core.NewHBPCandidates(col, f, nseg)
	var extra metrics.ExecStats
	if ws != nil {
		segs, _ := core.HBPLiveWindows(col, f, 0, nseg)
		extra.SegmentsAggregated = segs
	}
	b := col.NumGroups()
	tau := col.Tau()
	chunks, histBits := core.HBPRankChunks(tau, u)

	workerHists := make([][]uint64, o.threads())
	for w := range workerHists {
		workerHists[w] = make([]uint64, 1<<uint(histBits))
	}
	var m uint64
	for g := 0; g < b; g++ {
		for ci, ch := range chunks {
			shift, width := ch[0], ch[1]
			bins := 1 << uint(width)
			last := g == b-1 && ci == len(chunks)-1
			// Histograms are zeroed here, not inside the worker body: a
			// worker sees its range in workerBlock slices and must
			// accumulate across them.
			for w := range workerHists {
				h := workerHists[w][:bins]
				for i := range h {
					h[i] = 0
				}
			}
			used, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
				t0 := statsNow(ws)
				core.HBPHistogramChunk(col, v, g, shift, width, lo, hi, workerHists[w][:bins])
				if ws != nil {
					// Charge the whole round here (histogram plus, unless
					// this is the final round, the refine pass over the
					// same live sub-segments).
					factor := uint64(2)
					if last {
						factor = 1
					}
					hbpCollectRank(ws, w, col, v, factor, lo, hi, t0)
				}
				return nil
			})
			if err != nil {
				return 0, false, err
			}
			// Merge worker histograms and locate the bin containing rank r.
			var cum uint64
			bin := bins - 1
			for i := 0; i < bins; i++ {
				var h uint64
				for w := 0; w < used; w++ {
					h += workerHists[w][i]
				}
				if cum+h >= r {
					bin = i
					break
				}
				cum += h
			}
			r -= cum
			m = m<<uint(width) | uint64(bin)
			extra.RadixRounds++
			if last {
				break
			}
			_, err = forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
				t0 := statsNow(ws)
				if o.Wide {
					wide.HBPRankRefineChunkRange(col, v, g, shift, width, uint64(bin), lo, hi)
				} else {
					core.HBPRankRefineChunk(col, v, g, shift, width, uint64(bin), lo, hi)
				}
				if ws != nil {
					busyOnly(ws, w, t0)
				}
				return nil
			})
			if err != nil {
				return 0, false, err
			}
		}
	}
	o.statsEnd(ws, start, extra)
	return m, true, nil
}

// HBPAvgCtx computes AVG = SUM / COUNT, honoring ctx.
func HBPAvgCtx(ctx context.Context, col *hbp.Column, f *bitvec.Bitmap, o Options) (float64, bool, error) {
	cnt := core.Count(f)
	if cnt == 0 {
		return 0, false, nil
	}
	sum, err := HBPSumCtx(ctx, col, f, o)
	if err != nil {
		return 0, false, err
	}
	return float64(sum) / float64(cnt), true, nil
}
