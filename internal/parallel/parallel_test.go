package parallel

import (
	"math/rand"
	"testing"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

func fixture(rng *rand.Rand, n, k int, sel float64) ([]uint64, *bitvec.Bitmap) {
	vals := make([]uint64, n)
	f := bitvec.New(n)
	for i := range vals {
		vals[i] = rng.Uint64() & word.LowMask(k)
		if rng.Float64() < sel {
			f.Set(i)
		}
	}
	return vals, f
}

func TestPartition(t *testing.T) {
	cases := []struct {
		nseg, n int
		want    [][2]int
	}{
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{2, 4, [][2]int{{0, 1}, {1, 2}}},
		{0, 4, [][2]int{{0, 0}}},
		{5, 1, [][2]int{{0, 5}}},
	}
	for _, c := range cases {
		got := partition(c.nseg, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("partition(%d,%d) = %v, want %v", c.nseg, c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("partition(%d,%d) = %v, want %v", c.nseg, c.n, got, c.want)
			}
		}
	}
}

func TestPartitionCoversEverySegment(t *testing.T) {
	for nseg := 1; nseg < 50; nseg++ {
		for n := 1; n <= 8; n++ {
			parts := partition(nseg, n)
			covered := 0
			last := 0
			for _, p := range parts {
				if p[0] != last {
					t.Fatalf("gap in partition(%d,%d): %v", nseg, n, parts)
				}
				covered += p[1] - p[0]
				last = p[1]
			}
			if covered != nseg || last != nseg {
				t.Fatalf("partition(%d,%d) covers %d segments: %v", nseg, n, covered, parts)
			}
		}
	}
}

var optsMatrix = []Options{
	{Threads: 1},
	{Threads: 1, Wide: true},
	{Threads: 2},
	{Threads: 4},
	{Threads: 4, Wide: true},
	{Threads: 16}, // more threads than segments in small fixtures
	{Threads: 0},  // degenerate: treated as serial
}

func TestParallelVBPMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, sh := range []struct {
		n   int
		k   int
		sel float64
	}{
		{1, 8, 1}, {64 * 11, 25, 0.3}, {64*6 + 7, 12, 0.01}, {500, 8, 0}, {64 * 16, 7, 0.9},
	} {
		vals, f := fixture(rng, sh.n, sh.k, sh.sel)
		col := vbp.Pack(vals, sh.k, 4)
		wantSum := core.VBPSum(col, f)
		wantMin, wantMinOK := core.VBPMin(col, f)
		wantMax, wantMaxOK := core.VBPMax(col, f)
		wantMed, wantMedOK := core.VBPMedian(col, f)
		u := core.Count(f)
		for _, o := range optsMatrix {
			if got := VBPSum(col, f, o); got != wantSum {
				t.Fatalf("VBPSum %+v n=%d: got %d want %d", o, sh.n, got, wantSum)
			}
			if got, ok := VBPMin(col, f, o); got != wantMin || ok != wantMinOK {
				t.Fatalf("VBPMin %+v: got (%d,%v) want (%d,%v)", o, got, ok, wantMin, wantMinOK)
			}
			if got, ok := VBPMax(col, f, o); got != wantMax || ok != wantMaxOK {
				t.Fatalf("VBPMax %+v: got (%d,%v) want (%d,%v)", o, got, ok, wantMax, wantMaxOK)
			}
			if got, ok := VBPMedian(col, f, o); got != wantMed || ok != wantMedOK {
				t.Fatalf("VBPMedian %+v: got (%d,%v) want (%d,%v)", o, got, ok, wantMed, wantMedOK)
			}
			for _, r := range []uint64{0, 1, u, u + 1} {
				wr, wok := core.VBPRank(col, f, r)
				if got, ok := VBPRank(col, f, r, o); got != wr || ok != wok {
					t.Fatalf("VBPRank(%d) %+v: got (%d,%v) want (%d,%v)", r, o, got, ok, wr, wok)
				}
			}
			wa, waOK := core.VBPAvg(col, f)
			if got, ok := VBPAvg(col, f, o); got != wa || ok != waOK {
				t.Fatalf("VBPAvg %+v: got (%v,%v) want (%v,%v)", o, got, ok, wa, waOK)
			}
		}
	}
}

func TestParallelHBPMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, sh := range []struct {
		n   int
		k   int
		sel float64
	}{
		{1, 8, 1}, {64 * 11, 25, 0.3}, {64*6 + 7, 12, 0.01}, {500, 8, 0}, {700, 25, 0.9},
	} {
		for _, tau := range []int{4, hbp.DefaultTau(sh.k)} {
			vals, f := fixture(rng, sh.n, sh.k, sh.sel)
			col := hbp.Pack(vals, sh.k, tau)
			wantSum := core.HBPSum(col, f)
			wantMin, wantMinOK := core.HBPMin(col, f)
			wantMax, wantMaxOK := core.HBPMax(col, f)
			wantMed, wantMedOK := core.HBPMedian(col, f)
			u := core.Count(f)
			for _, o := range optsMatrix {
				if got := HBPSum(col, f, o); got != wantSum {
					t.Fatalf("HBPSum %+v n=%d tau=%d: got %d want %d", o, sh.n, tau, got, wantSum)
				}
				if got, ok := HBPMin(col, f, o); got != wantMin || ok != wantMinOK {
					t.Fatalf("HBPMin %+v: got (%d,%v) want (%d,%v)", o, got, ok, wantMin, wantMinOK)
				}
				if got, ok := HBPMax(col, f, o); got != wantMax || ok != wantMaxOK {
					t.Fatalf("HBPMax %+v: got (%d,%v) want (%d,%v)", o, got, ok, wantMax, wantMaxOK)
				}
				if got, ok := HBPMedian(col, f, o); got != wantMed || ok != wantMedOK {
					t.Fatalf("HBPMedian %+v: got (%d,%v) want (%d,%v)", o, got, ok, wantMed, wantMedOK)
				}
				for _, r := range []uint64{0, 1, u, u + 1} {
					wr, wok := core.HBPRank(col, f, r)
					if got, ok := HBPRank(col, f, r, o); got != wr || ok != wok {
						t.Fatalf("HBPRank(%d) %+v: got (%d,%v) want (%d,%v)", r, o, got, ok, wr, wok)
					}
				}
				wa, waOK := core.HBPAvg(col, f)
				if got, ok := HBPAvg(col, f, o); got != wa || ok != waOK {
					t.Fatalf("HBPAvg %+v: got (%v,%v) want (%v,%v)", o, got, ok, wa, waOK)
				}
			}
		}
	}
}
