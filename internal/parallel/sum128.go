package parallel

import (
	"context"
	"fmt"
	"math/bits"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/metrics"
	"bpagg/internal/scan"
	"bpagg/internal/vbp"
)

// OverflowError reports that the true SUM exceeds uint64. The drivers
// only return it from the checked 128-bit paths, which run when
// core.SumOverflowPossible says the column could wrap; the exact total is
// Hi·2^64 + Lo. The public API layer re-wraps it into bpagg.OverflowError.
type OverflowError struct {
	Hi, Lo uint64
}

// Error implements the error interface.
func (e *OverflowError) Error() string {
	return fmt.Sprintf("parallel: sum overflows uint64 (hi=%d, lo=%d)", e.Hi, e.Lo)
}

// merge128 folds per-worker 128-bit partials into one (hi, lo) pair.
func merge128(his, los []uint64) (hi, lo uint64) {
	for w := range his {
		nl, carry := bits.Add64(lo, los[w], 0)
		lo = nl
		hi += his[w] + carry
	}
	return hi, lo
}

// sum128Result maps a merged 128-bit total to the driver return contract:
// the uint64 value when it fits, *OverflowError when it does not.
func sum128Result(hi, lo uint64) (uint64, error) {
	if hi != 0 {
		return 0, &OverflowError{Hi: hi, Lo: lo}
	}
	return lo, nil
}

// vbpSumCtx128 is the checked twin of VBPSumCtx. The wide-word option is
// ignored here: the 256-bit kernels have no checked variant, and this
// path only runs on columns where overflow is possible at all.
func vbpSumCtx128(ctx context.Context, col *vbp.Column, f *bitvec.Bitmap, o Options) (uint64, error) {
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	his := make([]uint64, n)
	los := make([]uint64, n)
	_, err := forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		ph, pl := core.VBPSumRange128(col, f, lo, hi)
		nl, carry := bits.Add64(los[w], pl, 0)
		los[w] = nl
		his[w] += ph + carry
		if ws != nil {
			vbpCollectDense(ws, w, col, f, lo, hi, t0)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	hi, lo := merge128(his, los)
	o.statsEnd(ws, start, metrics.ExecStats{})
	return sum128Result(hi, lo)
}

// hbpSumCtx128 is the checked twin of HBPSumCtx (wide ignored, as above).
func hbpSumCtx128(ctx context.Context, col *hbp.Column, f *bitvec.Bitmap, o Options) (uint64, error) {
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	his := make([]uint64, n)
	los := make([]uint64, n)
	_, err := forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		ph, pl := core.HBPSumRange128(col, f, lo, hi)
		nl, carry := bits.Add64(los[w], pl, 0)
		los[w] = nl
		his[w] += ph + carry
		if ws != nil {
			hbpCollectDense(ws, w, col, f, lo, hi, t0)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	hi, lo := merge128(his, los)
	o.statsEnd(ws, start, metrics.ExecStats{})
	return sum128Result(hi, lo)
}

// vbpFusedSumCtx128 is the checked twin of VBPFusedSumCtx.
func vbpFusedSumCtx128(ctx context.Context, col *vbp.Column, preds []scan.WindowPred, o Options) (sum, cnt uint64, err error) {
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	his := make([]uint64, n)
	los := make([]uint64, n)
	cnts := make([]uint64, n)
	fss := make([]core.FusedStats, n)
	_, err = forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		ph, pl, c := core.VBPFusedSumCount128(col, preds, lo, hi, &fss[w])
		nl, carry := bits.Add64(los[w], pl, 0)
		los[w] = nl
		his[w] += ph + carry
		cnts[w] += c
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	hi, lo := merge128(his, los)
	for w := 0; w < n; w++ {
		cnt += cnts[w]
	}
	o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
	sum, err = sum128Result(hi, lo)
	if err != nil {
		return 0, 0, err
	}
	return sum, cnt, nil
}

// hbpFusedSumCtx128 is the checked twin of HBPFusedSumCtx.
func hbpFusedSumCtx128(ctx context.Context, col *hbp.Column, preds []scan.WindowPred, o Options) (sum, cnt uint64, err error) {
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	his := make([]uint64, n)
	los := make([]uint64, n)
	cnts := make([]uint64, n)
	fss := make([]core.FusedStats, n)
	_, err = forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		ph, pl, c := core.HBPFusedSumCount128(col, preds, lo, hi, &fss[w])
		nl, carry := bits.Add64(los[w], pl, 0)
		los[w] = nl
		his[w] += ph + carry
		cnts[w] += c
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	hi, lo := merge128(his, los)
	for w := 0; w < n; w++ {
		cnt += cnts[w]
	}
	o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
	sum, err = sum128Result(hi, lo)
	if err != nil {
		return 0, 0, err
	}
	return sum, cnt, nil
}
