package parallel

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ForEachIndexErr runs fn(i) for every index in [0, n) across up to
// `threads` worker goroutines — the shard fan-out primitive. Indices are
// pulled from a shared counter (shards vary wildly in residual work after
// pruning, so static partitioning would idle workers), each call is
// panic-contained into *PanicError, and a ctx check precedes every index.
// All workers are always joined, and errors are keyed by index, not by
// worker, so the returned error — the first by index order — is
// deterministic at any thread count.
func ForEachIndexErr(ctx context.Context, n, threads int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if n == 1 {
		// Single index: run inline on the caller's goroutine. Spawning a
		// worker plus a WaitGroup rendezvous costs more than most per-shard
		// aggregate kernels on a small shard, and single-shard stores (and
		// range queries pruned to one shard) hit this path on every call.
		if err := ctx.Err(); err != nil {
			return err
		}
		return runIndex(0, 0, fn)
	}
	if threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = runIndex(w, i, fn)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runIndex executes fn(i) with panic containment.
func runIndex(w, i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Worker: w, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}
