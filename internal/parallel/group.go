package parallel

import (
	"context"
	"sort"
	"time"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/metrics"
	"bpagg/internal/vbp"
)

// Single-pass grouped drivers. The partition drivers split the segment
// range across workers, each of which banks per-group selection words
// for its own range (core.GroupBank), then merge the banks into one
// sorted key list and one dense selection bitmap per key. Worker ranges
// are disjoint and the key union is sorted, so the merged result is
// deterministic for any thread count. The banked aggregate drivers give
// every worker its own accumulators and combine them in ascending
// worker order — the same deterministic-combine discipline as the
// scalar drivers.

// VBPGroupPartitionCtx partitions the filter across all group keys of a
// VBP grouping column in one pass. It returns the discovered keys in
// ascending order with one selection bitmap per key, or
// core.ErrGroupCardinality past core.MaxGroups distinct keys.
func VBPGroupPartitionCtx(ctx context.Context, col *vbp.Column, f *bitvec.Bitmap, o Options) ([]uint64, []*bitvec.Bitmap, error) {
	return groupPartitionCtx(ctx, col.NumSegments(), col.Len(), 64, col.K(), o,
		func(bank *core.GroupBank, lo, hi int, st *core.GroupStats) error {
			return core.VBPGroupPartitionRange(col, f, bank, lo, hi, st)
		})
}

// HBPGroupPartitionCtx is the HBP twin of VBPGroupPartitionCtx.
func HBPGroupPartitionCtx(ctx context.Context, col *hbp.Column, f *bitvec.Bitmap, o Options) ([]uint64, []*bitvec.Bitmap, error) {
	return groupPartitionCtx(ctx, col.NumSegments(), col.Len(), col.ValuesPerSegment(), col.K(), o,
		func(bank *core.GroupBank, lo, hi int, st *core.GroupStats) error {
			return core.HBPGroupPartitionRange(col, f, bank, lo, hi, st)
		})
}

func groupPartitionCtx(ctx context.Context, nseg, n, vps, keyK int, o Options,
	run func(bank *core.GroupBank, lo, hi int, st *core.GroupStats) error) ([]uint64, []*bitvec.Bitmap, error) {
	var start time.Time
	if o.Stats != nil {
		start = time.Now()
	}
	parts := partition(nseg, o.threads())
	banks := make([]*core.GroupBank, len(parts))
	gsts := make([]core.GroupStats, len(parts))
	busy := make([]int64, len(parts))
	for i, p := range parts {
		banks[i] = core.NewGroupBank(p[0], p[1])
		banks[i].EnableDirect(keyK)
	}
	if _, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
		var t0 time.Time
		if o.Stats != nil {
			t0 = time.Now()
		}
		err := run(banks[w], lo, hi, &gsts[w])
		if o.Stats != nil {
			busy[w] += time.Since(t0).Nanoseconds()
		}
		return err
	}); err != nil {
		return nil, nil, err
	}

	// Union the per-worker key sets, sorted ascending.
	var keys []uint64
	for _, b := range banks {
		keys = append(keys, b.Keys...)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dedup := keys[:0]
	for i, k := range keys {
		if i == 0 || k != dedup[len(dedup)-1] {
			dedup = append(dedup, k)
		}
	}
	keys = dedup
	if len(keys) > core.MaxGroups {
		return nil, nil, core.ErrGroupCardinality
	}

	sels := make([]*bitvec.Bitmap, len(keys))
	for i, key := range keys {
		bm := bitvec.New(n)
		for _, bank := range banks {
			ws, ok := bank.Lookup(key)
			if !ok {
				continue
			}
			for si, w := range ws {
				if w == 0 {
					continue
				}
				if seg := bank.SegLo + si; vps == 64 {
					bm.SetWord(seg, w)
				} else {
					bm.Deposit(seg*vps, vps, w)
				}
			}
		}
		sels[i] = bm
	}

	if o.Stats != nil {
		var gs core.GroupStats
		var bankWords uint64
		var busyTotal int64
		for i := range banks {
			gs = gs.Add(gsts[i])
			bankWords += banks[i].BankWords
			busyTotal += busy[i]
		}
		o.Stats.Record(metrics.ExecStats{
			Scans:               1,
			SegmentsScanned:     gs.Segments,
			SegmentsCacheServed: gs.CacheServed,
			WordsCompared:       gs.Words,
			GroupsDiscovered:    uint64(len(keys)),
			GroupBankWords:      bankWords,
			ScanNanos:           time.Since(start).Nanoseconds(),
			WorkerBusyNanos:     busyTotal,
		})
	}
	return keys, sels, nil
}

// groupStatsExtra folds worker GroupStats into the driver-level extra
// batch merged by statsEnd.
func groupStatsExtra(gsts []core.GroupStats) metrics.ExecStats {
	var gs core.GroupStats
	for i := range gsts {
		gs = gs.Add(gsts[i])
	}
	return metrics.ExecStats{
		SegmentsAggregated:  gs.Segments,
		WordsTouched:        gs.Words,
		SegmentsCacheServed: gs.CacheServed,
	}
}

// VBPGroupSumCtx computes the 128-bit SUM of every group's selection in
// one pass over the measure column. Results are (hi, lo) pairs indexed
// like sels; hi != 0 marks a uint64 overflow the caller surfaces.
func VBPGroupSumCtx(ctx context.Context, col *vbp.Column, sels []*bitvec.Bitmap, o Options) ([]uint64, []uint64, error) {
	k := col.K()
	nG := len(sels)
	ws, start := o.statsBegin()
	parts := partition(col.NumSegments(), o.threads())
	bSums := make([][]uint64, len(parts))
	his := make([][]uint64, len(parts))
	los := make([][]uint64, len(parts))
	gsts := make([]core.GroupStats, len(parts))
	for w := range parts {
		bSums[w] = make([]uint64, nG*k)
		his[w] = make([]uint64, nG)
		los[w] = make([]uint64, nG)
	}
	if _, err := forEachRangeErr(ctx, col.NumSegments(), o.threads(), func(w, lo, hi int) error {
		t0 := statsNow(ws)
		core.VBPGroupSumRange128(col, sels, lo, hi, bSums[w], his[w], los[w], &gsts[w])
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	for w := 1; w < len(parts); w++ {
		for i, v := range bSums[w] {
			bSums[0][i] += v
		}
		core.Add128Pairs(his[0], los[0], his[w], los[w])
	}
	core.VBPGroupSumFinish(k, bSums[0], his[0], los[0])
	o.statsEnd(ws, start, groupStatsExtra(gsts))
	return his[0], los[0], nil
}

// HBPGroupSumCtx is the HBP twin of VBPGroupSumCtx.
func HBPGroupSumCtx(ctx context.Context, col *hbp.Column, sels []*bitvec.Bitmap, o Options) ([]uint64, []uint64, error) {
	b := col.NumGroups()
	nG := len(sels)
	ws, start := o.statsBegin()
	parts := partition(col.NumSegments(), o.threads())
	ghis := make([][]uint64, len(parts))
	glos := make([][]uint64, len(parts))
	his := make([][]uint64, len(parts))
	los := make([][]uint64, len(parts))
	gsts := make([]core.GroupStats, len(parts))
	for w := range parts {
		ghis[w] = make([]uint64, nG*b)
		glos[w] = make([]uint64, nG*b)
		his[w] = make([]uint64, nG)
		los[w] = make([]uint64, nG)
	}
	if _, err := forEachRangeErr(ctx, col.NumSegments(), o.threads(), func(w, lo, hi int) error {
		t0 := statsNow(ws)
		core.HBPGroupSumRange128(col, sels, lo, hi, ghis[w], glos[w], his[w], los[w], &gsts[w])
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	for w := 1; w < len(parts); w++ {
		core.Add128Pairs(ghis[0], glos[0], ghis[w], glos[w])
		core.Add128Pairs(his[0], los[0], his[w], los[w])
	}
	core.HBPGroupSumFinish(b, col.Tau(), ghis[0], glos[0], his[0], los[0])
	o.statsEnd(ws, start, groupStatsExtra(gsts))
	return his[0], los[0], nil
}

// VBPGroupExtremeCtx computes MIN (or MAX) of every group's selection in
// one pass over the measure column. anys[i] is false for a group whose
// selection turned out empty on this column (cannot happen for
// selections produced by the partition drivers).
func VBPGroupExtremeCtx(ctx context.Context, col *vbp.Column, sels []*bitvec.Bitmap, wantMin bool, o Options) ([]uint64, []bool, error) {
	return groupExtremeCtx(ctx, col.NumSegments(), len(sels), wantMin, o,
		func(lo, hi int, bests []uint64, anys []bool, st *core.GroupStats) {
			core.VBPGroupExtremeRange(col, sels, wantMin, lo, hi, bests, anys, st)
		})
}

// HBPGroupExtremeCtx is the HBP twin of VBPGroupExtremeCtx.
func HBPGroupExtremeCtx(ctx context.Context, col *hbp.Column, sels []*bitvec.Bitmap, wantMin bool, o Options) ([]uint64, []bool, error) {
	return groupExtremeCtx(ctx, col.NumSegments(), len(sels), wantMin, o,
		func(lo, hi int, bests []uint64, anys []bool, st *core.GroupStats) {
			core.HBPGroupExtremeRange(col, sels, wantMin, lo, hi, bests, anys, st)
		})
}

func groupExtremeCtx(ctx context.Context, nseg, nG int, wantMin bool, o Options,
	run func(lo, hi int, bests []uint64, anys []bool, st *core.GroupStats)) ([]uint64, []bool, error) {
	ws, start := o.statsBegin()
	parts := partition(nseg, o.threads())
	bests := make([][]uint64, len(parts))
	anys := make([][]bool, len(parts))
	gsts := make([]core.GroupStats, len(parts))
	for w := range parts {
		bests[w] = make([]uint64, nG)
		anys[w] = make([]bool, nG)
	}
	if _, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
		t0 := statsNow(ws)
		run(lo, hi, bests[w], anys[w], &gsts[w])
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	for w := 1; w < len(parts); w++ {
		for gi := range bests[0] {
			if !anys[w][gi] {
				continue
			}
			v := bests[w][gi]
			if !anys[0][gi] || wantMin && v < bests[0][gi] || !wantMin && v > bests[0][gi] {
				bests[0][gi] = v
			}
			anys[0][gi] = true
		}
	}
	o.statsEnd(ws, start, groupStatsExtra(gsts))
	return bests[0], anys[0], nil
}
