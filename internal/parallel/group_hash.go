package parallel

import (
	"context"
	"math/bits"
	"sort"
	"sync"
	"time"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/metrics"
	"bpagg/internal/vbp"
)

// Hash-banked grouped drivers (DESIGN.md §12). The partition driver
// splits the first grouping column's segments across workers, each of
// which banks per-key selection words into its own open-addressing
// core.HashBank; further grouping columns refine each worker's bank into
// composite keys (re-windowing the entries when the columns' segment
// sizes differ). The per-worker banks then merge into one sorted key list
// and one canonical segment-major run list, deterministic for any thread
// count: worker ranges are disjoint, the key union is sorted, and runs
// sort by (segment, group). Aggregates run straight off the run list, so
// nothing is ever O(groups × segments) — the tier that carries GROUP BY
// from the direct bank's 1024-key budget to core.MaxHashGroups.

// GroupCol is one grouping or measure column handed to the hash drivers:
// exactly one of V and H is non-nil.
type GroupCol struct {
	V *vbp.Column
	H *hbp.Column
}

func (c GroupCol) vps() int {
	if c.V != nil {
		return 64
	}
	return c.H.ValuesPerSegment()
}

func (c GroupCol) nseg() int {
	if c.V != nil {
		return c.V.NumSegments()
	}
	return c.H.NumSegments()
}

// Width returns the column's key width in bits (its packed-code shift
// metadata for composite keys).
func (c GroupCol) Width() int {
	if c.V != nil {
		return c.V.K()
	}
	return c.H.K()
}

// HashPartition is the result of a hash-banked grouped partition: the
// sorted composite keys, per-group row counts, and the canonical run list
// the banked aggregate kernels consume. Vps is the window size of the
// canonical entries (the last grouping column's segmentation); aggregates
// over a measure column with a different window size re-window lazily and
// cache per size.
type HashPartition struct {
	Keys   []uint64
	Counts []uint64
	N      int
	Vps    int

	se     core.SegEntries
	gStart []int32
	gEnt   []core.SegWord

	mu    sync.Mutex
	reVps map[int]*core.SegEntries
}

// hashTriple is one (segment, group, word) entry during merge.
type hashTriple struct {
	seg int32
	gi  int32
	w   uint64
}

// mergeTriples sorts by (segment, group), ORs duplicate (segment, group)
// pairs (worker-boundary spill after re-windowing), and returns the
// segment-major run list.
func mergeTriples(trs []hashTriple) core.SegEntries {
	sort.Slice(trs, func(i, j int) bool {
		if trs[i].seg != trs[j].seg {
			return trs[i].seg < trs[j].seg
		}
		return trs[i].gi < trs[j].gi
	})
	var se core.SegEntries
	for _, t := range trs {
		if n := len(se.GI); n > 0 && se.Segs[len(se.Segs)-1] == t.seg {
			if se.GI[n-1] == t.gi {
				se.W[n-1] |= t.w
				continue
			}
		} else {
			se.Segs = append(se.Segs, t.seg)
			se.Start = append(se.Start, int32(len(se.GI)))
		}
		se.GI = append(se.GI, t.gi)
		se.W = append(se.W, t.w)
	}
	se.Start = append(se.Start, int32(len(se.GI)))
	return se
}

// HashGroupPartitionCtx partitions the filter across the composite keys
// of one or more grouping columns in one traversal, or returns
// core.ErrGroupCardinality past limit distinct keys. n is the table's row
// count; limit is core.MaxHashGroups in production (tests pass tiny
// budgets to exercise the fallback).
func HashGroupPartitionCtx(ctx context.Context, cols []GroupCol, f *bitvec.Bitmap, n, limit int, o Options) (*HashPartition, error) {
	var start time.Time
	if o.Stats != nil {
		start = time.Now()
	}
	nseg := cols[0].nseg()
	parts := partition(nseg, o.threads())
	banks := make([]*core.HashBank, len(parts))
	gsts := make([]core.GroupStats, len(parts))
	busy := make([]int64, len(parts))
	probes := make([]uint64, len(parts))
	growths := make([]uint64, len(parts))
	for i := range parts {
		banks[i] = core.NewHashBank(limit)
	}
	if _, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
		var t0 time.Time
		if o.Stats != nil {
			t0 = time.Now()
		}
		var err error
		if c := cols[0]; c.V != nil {
			err = core.VBPHashPartitionRange(c.V, f, banks[w], lo, hi, &gsts[w])
		} else {
			err = core.HBPHashPartitionRange(c.H, f, banks[w], lo, hi, &gsts[w])
		}
		if o.Stats != nil {
			busy[w] += time.Since(t0).Nanoseconds()
		}
		return err
	}); err != nil {
		return nil, err
	}

	// Composite refinement: each worker independently re-partitions its
	// own bank by the next column, keeping the disjoint-rows invariant.
	vps := cols[0].vps()
	for _, c := range cols[1:] {
		cvps := c.vps()
		if _, err := forEachRangeErr(ctx, len(banks), len(banks), func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				var t0 time.Time
				if o.Stats != nil {
					t0 = time.Now()
				}
				src := banks[i]
				if cvps != vps {
					for ki := range src.Ents {
						src.Ents[ki] = core.RewindowSegWords(src.Ents[ki], vps, cvps)
					}
				}
				dst := core.NewHashBank(limit)
				var err error
				if c.V != nil {
					err = core.VBPHashRefineRange(c.V, src.Keys, src.Ents, uint(c.Width()), dst, &gsts[i])
				} else {
					err = core.HBPHashRefineRange(c.H, src.Keys, src.Ents, uint(c.Width()), dst, &gsts[i])
				}
				probes[i] += src.Probes
				growths[i] += src.Growths
				banks[i] = dst
				if o.Stats != nil {
					busy[i] += time.Since(t0).Nanoseconds()
				}
				if err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		vps = cvps
	}

	// Union the per-worker key sets, sorted ascending — the merge order
	// that keeps results bit-identical across thread counts.
	var keys []uint64
	for _, b := range banks {
		keys = append(keys, b.Keys...)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dedup := keys[:0]
	for i, k := range keys {
		if i == 0 || k != dedup[len(dedup)-1] {
			dedup = append(dedup, k)
		}
	}
	keys = dedup
	if len(keys) > limit {
		return nil, core.ErrGroupCardinality
	}

	var total int
	for _, b := range banks {
		total += int(b.BankWords)
	}
	trs := make([]hashTriple, 0, total)
	for _, b := range banks {
		for ki, key := range b.Keys {
			gi := int32(sort.Search(len(keys), func(j int) bool { return keys[j] >= key }))
			for _, e := range b.Ents[ki] {
				trs = append(trs, hashTriple{seg: e.Seg, gi: gi, w: e.W})
			}
		}
	}
	hp := &HashPartition{Keys: keys, N: n, Vps: vps, se: mergeTriples(trs)}
	hp.Counts = make([]uint64, len(keys))
	hp.gStart = make([]int32, len(keys)+1)
	for e := range hp.se.GI {
		gi := hp.se.GI[e]
		hp.Counts[gi] += uint64(bits.OnesCount64(hp.se.W[e]))
		hp.gStart[gi+1]++
	}
	for i := 1; i <= len(keys); i++ {
		hp.gStart[i] += hp.gStart[i-1]
	}
	hp.gEnt = make([]core.SegWord, len(hp.se.GI))
	pos := append([]int32(nil), hp.gStart...)
	for r := 0; r < hp.se.NumRuns(); r++ {
		for e := hp.se.Start[r]; e < hp.se.Start[r+1]; e++ {
			gi := hp.se.GI[e]
			hp.gEnt[pos[gi]] = core.SegWord{Seg: hp.se.Segs[r], W: hp.se.W[e]}
			pos[gi]++
		}
	}

	if o.Stats != nil {
		var gs core.GroupStats
		var bankWords, pr, gr uint64
		var busyTotal int64
		for i := range banks {
			gs = gs.Add(gsts[i])
			bankWords += banks[i].BankWords
			pr += probes[i] + banks[i].Probes
			gr += growths[i] + banks[i].Growths
			busyTotal += busy[i]
		}
		o.Stats.Record(metrics.ExecStats{
			Scans:               1,
			SegmentsScanned:     gs.Segments,
			SegmentsCacheServed: gs.CacheServed,
			WordsCompared:       gs.Words,
			GroupsDiscovered:    uint64(len(keys)),
			GroupBankWords:      bankWords,
			HashProbes:          pr,
			HashGrowths:         gr,
			ScanNanos:           time.Since(start).Nanoseconds(),
			WorkerBusyNanos:     busyTotal,
		})
	}
	return hp, nil
}

// entriesFor returns the run list in vps-value windows, re-windowing the
// canonical list lazily and caching per window size (an HBP measure
// column's segmentation need not match the grouping column's).
func (hp *HashPartition) entriesFor(vps int) *core.SegEntries {
	if vps == hp.Vps {
		return &hp.se
	}
	hp.mu.Lock()
	defer hp.mu.Unlock()
	if se, ok := hp.reVps[vps]; ok {
		return se
	}
	var trs []hashTriple
	for r := 0; r < hp.se.NumRuns(); r++ {
		for e := hp.se.Start[r]; e < hp.se.Start[r+1]; e++ {
			ws := core.RewindowSegWords([]core.SegWord{{Seg: hp.se.Segs[r], W: hp.se.W[e]}}, hp.Vps, vps)
			for _, sw := range ws {
				trs = append(trs, hashTriple{seg: sw.Seg, gi: hp.se.GI[e], w: sw.W})
			}
		}
	}
	se := mergeTriples(trs)
	if hp.reVps == nil {
		hp.reVps = map[int]*core.SegEntries{}
	}
	hp.reVps[vps] = &se
	return &se
}

// Materialize builds group i's dense selection bitmap from its banked
// words. The hash tier keeps selections sparse — 10^5 dense bitmaps is
// exactly the memory wall the tier exists to avoid — so per-group bitmap
// consumers (MEDIAN, NULL-aware per-group fallbacks) materialize one
// group at a time.
func (hp *HashPartition) Materialize(i int) *bitvec.Bitmap {
	bm := bitvec.New(hp.N)
	for _, e := range hp.gEnt[hp.gStart[i]:hp.gStart[i+1]] {
		if hp.Vps == 64 {
			bm.SetWord(int(e.Seg), e.W)
		} else {
			bm.Deposit(int(e.Seg)*hp.Vps, hp.Vps, e.W)
		}
	}
	return bm
}

// HashGroupSumCtx computes the 128-bit SUM of every group in one pass
// over the measure column, indexed like Keys; hi != 0 marks a uint64
// overflow the caller surfaces. Workers split the live runs; partials
// merge in ascending worker order.
func HashGroupSumCtx(ctx context.Context, col GroupCol, hp *HashPartition, o Options) ([]uint64, []uint64, error) {
	se := hp.entriesFor(col.vps())
	nG := len(hp.Keys)
	ws, start := o.statsBegin()
	parts := partition(se.NumRuns(), o.threads())
	his := make([][]uint64, len(parts))
	los := make([][]uint64, len(parts))
	gsts := make([]core.GroupStats, len(parts))
	for w := range parts {
		his[w] = make([]uint64, nG)
		los[w] = make([]uint64, nG)
	}
	if _, err := forEachRangeErr(ctx, se.NumRuns(), o.threads(), func(w, lo, hi int) error {
		t0 := statsNow(ws)
		if col.V != nil {
			core.VBPHashSumRuns(col.V, se, lo, hi, his[w], los[w], &gsts[w])
		} else {
			core.HBPHashSumRuns(col.H, se, lo, hi, his[w], los[w], &gsts[w])
		}
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	for w := 1; w < len(parts); w++ {
		core.Add128Pairs(his[0], los[0], his[w], los[w])
	}
	o.statsEnd(ws, start, groupStatsExtra(gsts))
	return his[0], los[0], nil
}

// HashGroupExtremeCtx computes MIN (or MAX) of every group in one pass
// over the measure column. anys[i] is false only for a group with no
// selected rows on this column — impossible for partitions built by
// HashGroupPartitionCtx.
func HashGroupExtremeCtx(ctx context.Context, col GroupCol, hp *HashPartition, wantMin bool, o Options) ([]uint64, []bool, error) {
	se := hp.entriesFor(col.vps())
	nG := len(hp.Keys)
	ws, start := o.statsBegin()
	parts := partition(se.NumRuns(), o.threads())
	bests := make([][]uint64, len(parts))
	anys := make([][]bool, len(parts))
	gsts := make([]core.GroupStats, len(parts))
	for w := range parts {
		bests[w] = make([]uint64, nG)
		anys[w] = make([]bool, nG)
	}
	if _, err := forEachRangeErr(ctx, se.NumRuns(), o.threads(), func(w, lo, hi int) error {
		t0 := statsNow(ws)
		if col.V != nil {
			core.VBPHashExtremeRuns(col.V, se, wantMin, lo, hi, bests[w], anys[w], &gsts[w])
		} else {
			core.HBPHashExtremeRuns(col.H, se, wantMin, lo, hi, bests[w], anys[w], &gsts[w])
		}
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	for w := 1; w < len(parts); w++ {
		for gi := range bests[0] {
			if !anys[w][gi] {
				continue
			}
			v := bests[w][gi]
			if !anys[0][gi] || wantMin && v < bests[0][gi] || !wantMin && v > bests[0][gi] {
				bests[0][gi] = v
			}
			anys[0][gi] = true
		}
	}
	o.statsEnd(ws, start, groupStatsExtra(gsts))
	return bests[0], anys[0], nil
}
