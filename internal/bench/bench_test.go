package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bpagg/internal/tpch"
)

func tinyConfig() Config {
	return Config{
		N: 1 << 13, K: 25, Sel: 0.1, Threads: 2, Seed: 1,
		MinTime: time.Millisecond,
	}
}

func TestWorkloadGeneration(t *testing.T) {
	w := NewWorkload(10000, 25, 0.1, 1)
	if w.V.Len() != 10000 || w.H.Len() != 10000 || w.F.Len() != 10000 {
		t.Fatal("workload sizes wrong")
	}
	got := float64(w.F.Count()) / 10000
	if got < 0.08 || got > 0.12 {
		t.Errorf("selectivity %f, want ~0.1", got)
	}
	// Same seed reproduces; WithSelectivity reuses the packed columns.
	w2 := NewWorkload(10000, 25, 0.1, 1)
	if w2.F.Count() != w.F.Count() {
		t.Error("same seed, different filter")
	}
	w3 := w.WithSelectivity(0.9, 2)
	if w3.V != w.V || w3.H != w.H {
		t.Error("WithSelectivity must share packed columns")
	}
	if c := float64(w3.F.Count()) / 10000; c < 0.88 || c > 0.92 {
		t.Errorf("derived selectivity %f, want ~0.9", c)
	}
}

func TestMeasureNsPerTuple(t *testing.T) {
	calls := 0
	ns := MeasureNsPerTuple(1000, 2*time.Millisecond, func() {
		calls++
		time.Sleep(200 * time.Microsecond)
	})
	if calls < 2 {
		t.Errorf("expected repeated calls, got %d", calls)
	}
	// 200us over 1000 tuples ≈ 200ns/tuple (very loose bounds: CI noise).
	if ns < 50 || ns > 5000 {
		t.Errorf("ns/tuple = %f, expected around 200", ns)
	}
}

func TestFig5Shape(t *testing.T) {
	rows := Fig5(tinyConfig())
	// 7 selectivities x 2 layouts x 3 aggregates.
	if len(rows) != 7*2*3 {
		t.Fatalf("Fig5 returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r.NBPns <= 0 || r.BPns <= 0 || r.Speedup <= 0 {
			t.Fatalf("non-positive measurement in %+v", r)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6(tinyConfig())
	if len(rows) != 9*2*3 {
		t.Fatalf("Fig6 returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Param < 2 || r.Param > 50 {
			t.Fatalf("Fig6 k out of range: %+v", r)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	cfg := tinyConfig()
	rows := Fig7(cfg)
	if len(rows) != 4*2*3 {
		t.Fatalf("Fig7 returned %d rows", len(rows))
	}
	if rows[0].Param != float64(cfg.N) || rows[len(rows)-1].Param != float64(4*cfg.N) {
		t.Fatalf("Fig7 size sweep wrong: first %v last %v", rows[0].Param, rows[len(rows)-1].Param)
	}
}

func TestFig8Shape(t *testing.T) {
	rows := Fig8(tinyConfig())
	if len(rows) != 2*3 {
		t.Fatalf("Fig8 returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SerialNs <= 0 || r.MT <= 0 || r.SIMD <= 0 || r.Both <= 0 {
			t.Fatalf("non-positive speedup in %+v", r)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	for _, layout := range Layouts {
		rows := Table2(tinyConfig(), layout)
		if len(rows) != 9 {
			t.Fatalf("%v Table2 returned %d rows", layout, len(rows))
		}
		names := map[string]bool{}
		for _, r := range rows {
			names[r.Query] = true
			if r.ScanNs <= 0 || r.AggNBPNs <= 0 || r.AggBPNs <= 0 {
				t.Fatalf("non-positive cost in %+v", r)
			}
			if r.TotalNBPNs != r.ScanNs+r.AggNBPNs || r.TotalBPNs != r.ScanNs+r.AggBPNs {
				t.Fatalf("totals inconsistent in %+v", r)
			}
		}
		for _, q := range []string{"Q1", "Q6", "Q7", "Q9", "Q10", "Q11", "Q14", "Q15", "Q20"} {
			if !names[q] {
				t.Errorf("%v Table2 missing %s", layout, q)
			}
		}
	}
}

func TestSanity(t *testing.T) {
	if !Sanity(tinyConfig()) {
		t.Fatal("Sanity reported BP/NBP disagreement")
	}
}

func TestPrinters(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	PrintFig5(&buf, Fig5(cfg))
	PrintFig6(&buf, Fig6(cfg))
	PrintFig7(&buf, Fig7(cfg))
	PrintFig8(&buf, Fig8(cfg), cfg.Threads)
	PrintTable2(&buf, tpch.VBP, Table2(cfg, tpch.VBP))
	out := buf.String()
	for _, want := range []string{"Figure 5", "Figure 6", "Figure 7", "Figure 8", "Table II", "Q1", "MEDIAN", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q", want)
		}
	}
}
