// Package bench is the experiment harness that regenerates every figure
// and table of the paper's evaluation (§IV): the selectivity sweep
// (Figure 5), the value-width sweep (Figure 6), the data-size sweep
// (Figure 7), the multi-threading/SIMD speedups (Figure 8) and the TPC-H
// comparison (Table II).
//
// The paper reports processor cycles per tuple read with RDTSC on a fixed
// 3.4 GHz part and notes the metric "is equivalent to the wall clock
// time"; this harness reports nanoseconds per tuple from the monotonic
// clock, and all of the paper's conclusions are ratios, which are unit
// free.
package bench

import (
	"math/rand"
	"time"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// Config controls the experiment scale. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// N is the tuple count of micro-benchmark columns (paper: 1 billion).
	N int
	// K is the default value width in bits (paper: 25).
	K int
	// Sel is the default filter selectivity (paper: 0.1).
	Sel float64
	// Threads is the worker count for the multi-threaded experiments
	// (paper: 4, one per physical core).
	Threads int
	// Seed makes data generation deterministic.
	Seed int64
	// MinTime is the minimum measured duration per data point; short runs
	// repeat until they accumulate it.
	MinTime time.Duration
}

// DefaultConfig returns the scaled-down default experiment configuration
// (the paper's parameters at laptop-friendly N).
func DefaultConfig() Config {
	return Config{
		N:       4 << 20,
		K:       25,
		Sel:     0.1,
		Threads: 4,
		Seed:    1,
		MinTime: 150 * time.Millisecond,
	}
}

// Workload is one micro-benchmark column packed in both layouts, plus a
// filter bit vector of the configured selectivity — the setting of the
// paper's benchmark query Q1: SELECT agg(X) FROM Y WHERE Z < c.
type Workload struct {
	N, K int
	V    *vbp.Column
	H    *hbp.Column
	F    *bitvec.Bitmap
}

// NewWorkload generates a uniform k-bit column of n tuples with a Bernoulli
// filter of the given selectivity.
func NewWorkload(n, k int, sel float64, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]uint64, n)
	max := word.LowMask(k)
	f := bitvec.New(n)
	for i := range vals {
		vals[i] = rng.Uint64() & max
		if rng.Float64() < sel {
			f.Set(i)
		}
	}
	tauV := 4
	if tauV > k {
		tauV = k
	}
	return &Workload{
		N: n, K: k,
		V: vbp.Pack(vals, k, tauV),
		H: hbp.Pack(vals, k, hbp.DefaultTau(k)),
		F: f,
	}
}

// MeasureNsPerTuple runs fn repeatedly until minTime accumulates and
// returns the mean nanoseconds per tuple.
func MeasureNsPerTuple(n int, minTime time.Duration, fn func()) float64 {
	fn() // warm caches and one-time allocations
	var iters int
	var elapsed time.Duration
	for elapsed < minTime {
		start := time.Now()
		fn()
		elapsed += time.Since(start)
		iters++
	}
	return float64(elapsed.Nanoseconds()) / float64(iters) / float64(n)
}
