package bench

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"bpagg/internal/catalog"
	"bpagg/internal/server"
)

// Concurrent-clients experiment: many clients firing aggregate queries
// that share one predicate class at bpaggd's serving layer, measured
// with shared-scan batching on and off. The batched mode must show the
// multi-query amortization the paper exploits intra-query: total
// WordsTouched (packed words read by kernels) collapses because one
// traversal answers many queries.

// ServerRow is one serving-mode measurement.
type ServerRow struct {
	Mode         string  // "unbatched" | "batched"
	Clients      int     // concurrent clients
	Requests     int     // total requests answered
	QPS          float64 // answered / wall time
	P50Ms        float64
	P99Ms        float64
	WordsTouched uint64 // engine totals across the run
	Scans        uint64
	Batches      uint64 // shared batches executed (0 when unbatched)
	Batched      uint64 // requests answered from a shared batch
}

// serverCatalog packs a two-column table for the serving benchmark. The
// row count is deliberately smaller than the micro-benchmark N: the
// interesting axis here is concurrency, not column length.
func serverCatalog(cfg Config) (*catalog.Catalog, error) {
	n := cfg.N / 16
	if n < 1<<16 {
		n = 1 << 16
	}
	specs, err := catalog.ParseSchema("g:uint(4):vbp, v:uint(20):vbp")
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("g,v\n")
	rng := newSplitMix(uint64(cfg.Seed))
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%d\n", rng.next()&15, rng.next()&((1<<20)-1))
	}
	return catalog.LoadCSV(strings.NewReader(b.String()), specs)
}

// splitMix is a tiny deterministic generator so the benchmark does not
// depend on math/rand ordering across Go versions.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed + 0x9e3779b97f4a7c15} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// serverQueries is the request mix: one shared predicate class, several
// distinct aggregates — the shape shared-scan batching amortizes.
var serverQueries = []string{
	"SELECT SUM(v) WHERE g < 6",
	"SELECT COUNT(*) WHERE g < 6",
	"SELECT AVG(v) WHERE g < 6",
	"SELECT MIN(v), MAX(v) WHERE g < 6",
}

// runServerMode drives one serving configuration and reports the row.
func runServerMode(cat *catalog.Catalog, cfg Config, mode string, disableBatching bool, clients, perClient int) (ServerRow, error) {
	s, err := server.New(server.Config{
		Catalog:          cat,
		MaxConcurrent:    cfg.Threads,
		MaxQueue:         4 * clients,
		DefaultTimeout:   30 * time.Second,
		BatchWindow:      2 * time.Millisecond,
		BatchMinInflight: 2,
		MaxBatch:         clients,
		DisableBatching:  disableBatching,
	})
	if err != nil {
		return ServerRow{}, err
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lat := make([]time.Duration, clients*perClient)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; i < perClient; i++ {
				sql := serverQueries[(c+i)%len(serverQueries)]
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/query", "text/plain", bytes.NewBufferString(sql))
				if err != nil {
					errs[c] = err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("status %d for %q", resp.StatusCode, sql)
					return
				}
				lat[c*perClient+i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServerRow{}, err
		}
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx].Microseconds()) / 1000
	}
	totals := s.Totals()
	counters := s.CountersSnapshot()
	return ServerRow{
		Mode:         mode,
		Clients:      clients,
		Requests:     len(lat),
		QPS:          float64(len(lat)) / wall.Seconds(),
		P50Ms:        pct(0.50),
		P99Ms:        pct(0.99),
		WordsTouched: totals.WordsTouched,
		Scans:        totals.Scans,
		Batches:      counters.Batches,
		Batched:      counters.Batched,
	}, nil
}

// ConcurrentClients measures serving latency and engine work for the
// same workload with shared-scan batching off and on.
func ConcurrentClients(cfg Config) ([]ServerRow, error) {
	cat, err := serverCatalog(cfg)
	if err != nil {
		return nil, err
	}
	const clients, perClient = 32, 8
	var rows []ServerRow
	for _, m := range []struct {
		mode    string
		disable bool
	}{{"unbatched", true}, {"batched", false}} {
		row, err := runServerMode(cat, cfg, m.mode, m.disable, clients, perClient)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintServer renders the concurrent-clients comparison.
func PrintServer(w io.Writer, rows []ServerRow) {
	fmt.Fprintln(w, "concurrent-clients: shared-scan batching A/B at the serving layer")
	fmt.Fprintf(w, "%-10s %8s %8s %10s %9s %9s %14s %8s %8s %8s\n",
		"mode", "clients", "reqs", "qps", "p50_ms", "p99_ms", "words_touched", "scans", "batches", "batched")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %10.0f %9.2f %9.2f %14d %8d %8d %8d\n",
			r.Mode, r.Clients, r.Requests, r.QPS, r.P50Ms, r.P99Ms,
			r.WordsTouched, r.Scans, r.Batches, r.Batched)
	}
	if len(rows) == 2 && rows[1].WordsTouched > 0 && rows[0].WordsTouched > rows[1].WordsTouched {
		fmt.Fprintf(w, "batching reduced words touched %.1fx\n",
			float64(rows[0].WordsTouched)/float64(rows[1].WordsTouched))
	}
}
