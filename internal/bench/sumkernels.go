package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"bpagg"
	"bpagg/internal/core"
	"bpagg/internal/word"
)

// SUM-kernel A/B experiment: the positional-popcount (Harley–Seal
// carry-save) SUM kernels against the per-word-popcount bodies they
// replaced, toggled via core.PosPopEnabled inside interleaved measureAB
// rounds so both sides see the same thermal and cache drift.
//
// The table has two VBP columns: a uniform predicate column p whose
// filter at cfg.Sel leaves a partial filter word in essentially every
// segment (the filter-heavy shape where per-word popcounts dominate), and
// a measure column m summed under that filter. The mixes vary what m
// looks like — uniform and sorted value order — plus an all-match mix
// whose predicate accepts every tuple, so each window zone-decides
// all-match and SUM(m) is answered entirely from the per-segment
// aggregate caches: the carry-save layer never runs there and must not
// regress. A second grid compares the refreshed 256-bit wide fused
// kernels against the 64-bit core path, both on the carry-save side.

// SumKernelsRow is one legacy-vs-positional-popcount comparison.
type SumKernelsRow struct {
	Route    string  // "fused" | "two-phase"
	Mix      string  // "uniform" | "sorted" | "all-match"
	LegacyNs float64 // per-word-popcount ns/tuple (median of rounds)
	PosPopNs float64 // carry-save ns/tuple (median of rounds)
	Speedup  float64 // LegacyNs / PosPopNs
}

// SumKernelsWideRow compares the wide and core fused SUM kernels, both
// running the carry-save layer.
type SumKernelsWideRow struct {
	Mix    string
	CoreNs float64 // 64-bit fused SUM ns/tuple
	WideNs float64 // 256-bit fused SUM ns/tuple
	Ratio  float64 // WideNs / CoreNs (≤ 1 means wide is faster)
}

// sumKernelsTable packs the predicate and measure columns.
func sumKernelsTable(pvals, mvals []uint64, k int) *bpagg.Table {
	return bpagg.NewTableFromColumns(
		[]string{"p", "m"},
		[]*bpagg.Column{
			bpagg.FromValues(bpagg.VBP, k, pvals),
			bpagg.FromValues(bpagg.VBP, k, mvals),
		},
	)
}

// SumKernels runs the legacy-vs-carry-save grid and the wide-vs-core
// grid, single-threaded (the toggle is global state, and serial A/B
// keeps the comparison noise-free).
func SumKernels(cfg Config) ([]SumKernelsRow, []SumKernelsWideRow) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	max := word.LowMask(cfg.K)
	pvals := make([]uint64, cfg.N)
	uniform := make([]uint64, cfg.N)
	for i := range pvals {
		pvals[i] = rng.Uint64() & max
		uniform[i] = rng.Uint64() & max
	}
	sorted := append([]uint64(nil), uniform...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cut := uint64(float64(max) * cfg.Sel)
	selective := bpagg.Less(cut)
	allMatch := bpagg.LessEq(max) // every tuple passes → windows cache-serve

	old := core.PosPopEnabled
	defer func() { core.PosPopEnabled = old }()

	tables := map[string]*bpagg.Table{
		"uniform": sumKernelsTable(pvals, uniform, cfg.K),
		"sorted":  sumKernelsTable(pvals, sorted, cfg.K),
	}
	// Fused queries time the whole fused pass (window evaluation is part
	// of that route by construction). Two-phase queries materialize the
	// selection once, outside the timed region, so the measurement is the
	// aggregation phase alone — the part the SUM kernels own.
	sumQ := func(tbl *bpagg.Table, pred bpagg.Predicate, twoPhase, wide bool) func() {
		q := tbl.Query().Where("p", pred)
		if wide {
			q = q.With(bpagg.WideWords())
		}
		if twoPhase {
			q.Selection()
			return func() { q.Sum("m") }
		}
		return func() {
			q := tbl.Query().Where("p", pred)
			if wide {
				q = q.With(bpagg.WideWords())
			}
			q.Sum("m")
		}
	}
	withToggle := func(on bool, fn func()) func() {
		return func() {
			core.PosPopEnabled = on
			fn()
		}
	}

	var rows []SumKernelsRow
	type cell struct {
		route, mix, data string
		pred             bpagg.Predicate
		twoPhase         bool
	}
	cells := []cell{
		{"fused", "uniform", "uniform", selective, false},
		{"fused", "sorted", "sorted", selective, false},
		{"fused", "all-match", "uniform", allMatch, false},
		{"two-phase", "uniform", "uniform", selective, true},
		{"two-phase", "sorted", "sorted", selective, true},
	}
	for _, c := range cells {
		run := sumQ(tables[c.data], c.pred, c.twoPhase, false)
		legacyNs, posNs := measureAB(cfg.N, cfg.MinTime,
			withToggle(false, run), withToggle(true, run))
		rows = append(rows, SumKernelsRow{
			Route: c.route, Mix: c.mix,
			LegacyNs: legacyNs, PosPopNs: posNs, Speedup: legacyNs / posNs,
		})
	}

	core.PosPopEnabled = true
	var wideRows []SumKernelsWideRow
	for _, mix := range []string{"uniform", "sorted"} {
		coreNs, wideNs := measureAB(cfg.N, cfg.MinTime,
			sumQ(tables[mix], selective, false, false),
			sumQ(tables[mix], selective, false, true))
		wideRows = append(wideRows, SumKernelsWideRow{
			Mix: mix, CoreNs: coreNs, WideNs: wideNs, Ratio: wideNs / coreNs,
		})
	}
	return rows, wideRows
}

// PrintSumKernels renders both SUM-kernel grids.
func PrintSumKernels(w io.Writer, rows []SumKernelsRow, wideRows []SumKernelsWideRow, cfg Config) {
	fmt.Fprintln(w, "SumKernels — carry-save (positional popcount) SUM vs per-word popcount")
	fmt.Fprintf(w, "(VBP; k=%d; uniform predicate column at selectivity %.2f; single thread; interleaved medians of %d rounds)\n",
		cfg.K, cfg.Sel, fusedRounds)
	fmt.Fprintf(w, "%-10s %-10s %12s %12s %9s\n",
		"route", "mix", "legacy ns/t", "pospop ns/t", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-10s %12.3f %12.3f %8.2fx\n",
			r.Route, r.Mix, r.LegacyNs, r.PosPopNs, r.Speedup)
	}
	fmt.Fprintln(w, "\nWide fused SUM vs core fused SUM (both carry-save)")
	fmt.Fprintf(w, "%-10s %12s %12s %8s\n", "mix", "core ns/t", "wide ns/t", "ratio")
	for _, r := range wideRows {
		fmt.Fprintf(w, "%-10s %12.3f %12.3f %7.2fx\n", r.Mix, r.CoreNs, r.WideNs, r.Ratio)
	}
}
