package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"bpagg/internal/tpch"
)

func TestReportJSONRoundTrip(t *testing.T) {
	rep := NewReport(DefaultConfig())
	rep.AddFig5([]MicroRow{{Layout: tpch.VBP, Agg: AggSum, Param: 0.1, NBPns: 2.0, BPns: 0.5, Speedup: 4.0}})
	rep.AddFig8([]Fig8Row{{Layout: tpch.HBP, Agg: AggMinMax, SerialNs: 1.5, MT: 3.1, SIMD: 2.2, Both: 5.0}})
	rep.AddTable2(tpch.VBP, []Table2Row{{Query: "Q1", Selectivity: 0.1, ScanNs: 0.3, AggNBPNs: 2.0, AggBPNs: 0.4}})

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", back.Schema, ReportSchema)
	}
	if len(back.Fig5) != 1 || back.Fig5[0].Layout != "VBP" || back.Fig5[0].Speedup != 4.0 {
		t.Errorf("fig5 = %+v", back.Fig5)
	}
	if len(back.Fig8) != 1 || back.Fig8[0].Layout != "HBP" || back.Fig8[0].Agg != "MIN/MAX" {
		t.Errorf("fig8 = %+v", back.Fig8)
	}
	if len(back.Table2) != 1 || back.Table2[0].Query != "Q1" {
		t.Errorf("table2 = %+v", back.Table2)
	}
	if back.Config.N != DefaultConfig().N {
		t.Errorf("config.n = %d", back.Config.N)
	}
}

func TestReportNilSafe(t *testing.T) {
	var rep *Report
	rep.AddFig5(nil)
	rep.AddFig6(nil)
	rep.AddFig7(nil)
	rep.AddFig8(nil)
	rep.AddTable2(tpch.VBP, nil)
}
