package bench

import (
	"fmt"
	"io"
	"math/rand"

	"bpagg"
	"bpagg/internal/word"
)

// GroupBy A/B experiment: the single-pass bit-sliced partition engine
// (one traversal of the grouping column discovers every key and refines
// the filter into per-group selection words; banked kernels answer the
// aggregate for all groups in one traversal of the measure column)
// against the legacy per-group path (G discovery scans, then G
// independent aggregate passes). The cardinality sweep G ∈ {4, 16, 64,
// 256} tracks the paths' asymmetry: legacy traffic grows linearly in G
// while single-pass traffic is G-independent, so the speedup should
// approach G× for the aggregate phase. Measurements are interleaved
// like the fused experiment's so drift lands on both sides.

// GroupByRow is one single-pass vs legacy grouped comparison.
type GroupByRow struct {
	Layout   string  // "VBP" | "HBP"
	Agg      string  // "SUM" | "MIN"
	G        int     // group cardinality
	LegacyNs float64 // legacy per-group ns/tuple (median of rounds)
	SingleNs float64 // single-pass ns/tuple (median of rounds)
	Speedup  float64 // LegacyNs / SingleNs
}

// GroupBy runs the grid: layout × cardinality × aggregate, full grouped
// query (partition + aggregate) per iteration, single-threaded for a
// noise-free A/B.
func GroupBy(cfg Config) []GroupByRow {
	rng := rand.New(rand.NewSource(cfg.Seed))
	max := word.LowMask(cfg.K)
	vals := make([]uint64, cfg.N)
	for i := range vals {
		vals[i] = rng.Uint64() & max
	}

	var rows []GroupByRow
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		for _, G := range []int{4, 16, 64, 256} {
			kg := 1
			for 1<<kg < G {
				kg++
			}
			keys := make([]uint64, cfg.N)
			for i := range keys {
				keys[i] = uint64(rng.Intn(G))
			}
			tbl := bpagg.NewTableFromColumns(
				[]string{"g", "x"},
				[]*bpagg.Column{
					bpagg.FromValues(layout, kg, keys),
					bpagg.FromValues(layout, cfg.K, vals),
				},
			)
			if !tbl.Query().GroupBy("g").SinglePass() {
				panic(fmt.Sprintf("bench: G=%d %s grouped query did not take the single-pass path", G, layout))
			}
			for _, agg := range []struct {
				name string
				run  func(g *bpagg.Grouped)
			}{
				{"SUM", func(g *bpagg.Grouped) { g.Sum("x") }},
				{"MIN", func(g *bpagg.Grouped) { g.Min("x") }},
			} {
				legacy := func() {
					q := tbl.Query()
					q.Selection() // materialize: forces the per-group walk
					agg.run(q.GroupBy("g"))
				}
				single := func() {
					agg.run(tbl.Query().GroupBy("g"))
				}
				legacyNs, singleNs := measureAB(cfg.N, cfg.MinTime, legacy, single)
				rows = append(rows, GroupByRow{
					Layout: layout.String(), Agg: agg.name, G: G,
					LegacyNs: legacyNs, SingleNs: singleNs, Speedup: legacyNs / singleNs,
				})
			}
		}
	}
	return rows
}

// PrintGroupBy renders the grouped A/B grid.
func PrintGroupBy(w io.Writer, rows []GroupByRow, cfg Config) {
	fmt.Fprintln(w, "GroupBy — single-pass bit-sliced partition vs legacy per-group walk")
	fmt.Fprintf(w, "(k=%d; no filter; single thread; partition + aggregate per iteration; interleaved medians of %d rounds)\n",
		cfg.K, fusedRounds)
	fmt.Fprintf(w, "%-7s %-6s %5s %14s %14s %9s\n",
		"layout", "agg", "G", "legacy ns/t", "single ns/t", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %-6s %5d %14.3f %14.3f %8.2fx\n",
			r.Layout, r.Agg, r.G, r.LegacyNs, r.SingleNs, r.Speedup)
	}
}
