package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"bpagg"
	"bpagg/internal/word"
)

// GroupBy A/B experiment: the single-pass bit-sliced partition engine
// (one traversal of the grouping column discovers every key and refines
// the filter into per-group selection words; banked kernels answer the
// aggregate for all groups in one traversal of the measure column)
// against the legacy per-group path (G discovery scans, then G
// independent aggregate passes). The cardinality sweep G ∈ {4, 16, 64,
// 256} tracks the paths' asymmetry: legacy traffic grows linearly in G
// while single-pass traffic is G-independent, so the speedup should
// approach G× for the aggregate phase. Measurements are interleaved
// like the fused experiment's so drift lands on both sides.

// GroupByRow is one single-pass vs legacy grouped comparison.
type GroupByRow struct {
	Layout   string  // "VBP" | "HBP"
	Agg      string  // "SUM" | "MIN"
	G        int     // group cardinality
	LegacyNs float64 // legacy per-group ns/tuple (median of rounds)
	SingleNs float64 // single-pass ns/tuple (median of rounds)
	Speedup  float64 // LegacyNs / SingleNs
}

// GroupBy runs the grid: layout × cardinality × aggregate, full grouped
// query (partition + aggregate) per iteration, single-threaded for a
// noise-free A/B.
func GroupBy(cfg Config) []GroupByRow {
	rng := rand.New(rand.NewSource(cfg.Seed))
	max := word.LowMask(cfg.K)
	vals := make([]uint64, cfg.N)
	for i := range vals {
		vals[i] = rng.Uint64() & max
	}

	var rows []GroupByRow
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		for _, G := range []int{4, 16, 64, 256} {
			kg := 1
			for 1<<kg < G {
				kg++
			}
			keys := make([]uint64, cfg.N)
			for i := range keys {
				keys[i] = uint64(rng.Intn(G))
			}
			tbl := bpagg.NewTableFromColumns(
				[]string{"g", "x"},
				[]*bpagg.Column{
					bpagg.FromValues(layout, kg, keys),
					bpagg.FromValues(layout, cfg.K, vals),
				},
			)
			if !tbl.Query().GroupBy("g").SinglePass() {
				panic(fmt.Sprintf("bench: G=%d %s grouped query did not take the single-pass path", G, layout))
			}
			for _, agg := range []struct {
				name string
				run  func(g *bpagg.Grouped)
			}{
				{"SUM", func(g *bpagg.Grouped) { g.Sum("x") }},
				{"MIN", func(g *bpagg.Grouped) { g.Min("x") }},
			} {
				legacy := func() {
					q := tbl.Query()
					q.Selection() // materialize: forces the per-group walk
					agg.run(q.GroupBy("g"))
				}
				single := func() {
					agg.run(tbl.Query().GroupBy("g"))
				}
				legacyNs, singleNs := measureAB(cfg.N, cfg.MinTime, legacy, single)
				rows = append(rows, GroupByRow{
					Layout: layout.String(), Agg: agg.name, G: G,
					LegacyNs: legacyNs, SingleNs: singleNs, Speedup: legacyNs / singleNs,
				})
			}
		}
	}
	return rows
}

// GroupByHiCard sweeps group cardinality into hash-tier territory:
// G ∈ {1k, 4k, 16k, 64k, 256k, 1M} with the table scaled as n = 8·G
// (clamped to [2^17, 2^21]) so every group stays populated. SUM only —
// the aggregate whose banked kernel shares one measure traversal across
// all groups. The legacy side runs only up to hiCardLegacyCap: its
// per-group walk is O(G) full scans, minutes of wall clock at G = 256k,
// and the asymmetry is already unambiguous at 16k (the skip prints in
// the table and zeroes the JSON fields — never silently).

// hiCardLegacyCap is the largest G the legacy comparison side runs at.
const hiCardLegacyCap = 16384

// GroupByHiCardRow is one high-cardinality grouped measurement.
type GroupByHiCardRow struct {
	Layout   string  // "VBP" | "HBP"
	G        int     // group cardinality
	N        int     // table rows
	Tier     string  // partition tier of the single-pass side ("direct" | "hash")
	LegacyNs float64 // legacy ns/tuple; 0 when skipped (G > hiCardLegacyCap)
	SingleNs float64 // single-pass ns/tuple
	Speedup  float64 // LegacyNs / SingleNs; 0 when legacy skipped
}

// measure1 is the single-sided twin of measureAB: median ns/tuple of
// fusedRounds rounds, for points whose comparison side is skipped.
func measure1(n int, minTime time.Duration, fn func()) float64 {
	fn() // warm caches and one-time allocations
	per := minTime / fusedRounds
	if per <= 0 {
		per = time.Millisecond
	}
	xs := make([]float64, fusedRounds)
	for r := range xs {
		xs[r] = measureOnce(n, per, fn)
	}
	sort.Float64s(xs)
	return xs[fusedRounds/2]
}

// GroupByHiCard runs the high-cardinality sweep: layout × G, full
// grouped SUM (partition + aggregate) per iteration, single-threaded.
func GroupByHiCard(cfg Config) []GroupByHiCardRow {
	rng := rand.New(rand.NewSource(cfg.Seed))
	max := word.LowMask(cfg.K)

	var rows []GroupByHiCardRow
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		for _, G := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20} {
			n := 8 * G
			if n < 1<<17 {
				n = 1 << 17
			}
			if n > 1<<21 {
				n = 1 << 21
			}
			kg := 1
			for 1<<kg < G {
				kg++
			}
			keys := make([]uint64, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i] = uint64(rng.Intn(G))
				vals[i] = rng.Uint64() & max
			}
			tbl := bpagg.NewTableFromColumns(
				[]string{"g", "x"},
				[]*bpagg.Column{
					bpagg.FromValues(layout, kg, keys),
					bpagg.FromValues(layout, cfg.K, vals),
				},
			)
			probe := tbl.Query().GroupBy("g")
			if !probe.SinglePass() {
				panic(fmt.Sprintf("bench: G=%d %s grouped query did not take the single-pass path", G, layout))
			}
			tier := probe.Strategy().String()

			single := func() { tbl.Query().GroupBy("g").Sum("x") }
			row := GroupByHiCardRow{Layout: layout.String(), G: G, N: n, Tier: tier}
			if G <= hiCardLegacyCap {
				legacy := func() {
					q := tbl.Query()
					q.Selection() // materialize: forces the per-group walk
					q.GroupBy("g").Sum("x")
				}
				row.LegacyNs, row.SingleNs = measureAB(n, cfg.MinTime, legacy, single)
				row.Speedup = row.LegacyNs / row.SingleNs
			} else {
				row.SingleNs = measure1(n, cfg.MinTime, single)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// PrintGroupByHiCard renders the high-cardinality sweep.
func PrintGroupByHiCard(w io.Writer, rows []GroupByHiCardRow, cfg Config) {
	fmt.Fprintln(w, "GroupByHiCard — hash-banked single-pass vs legacy per-group walk at high cardinality")
	fmt.Fprintf(w, "(SUM; k=%d; no filter; single thread; partition + aggregate per iteration; interleaved medians of %d rounds)\n",
		cfg.K, fusedRounds)
	fmt.Fprintf(w, "%-7s %9s %9s %-7s %14s %14s %9s\n",
		"layout", "G", "n", "tier", "legacy ns/t", "single ns/t", "speedup")
	skipped := false
	for _, r := range rows {
		leg, sp := fmt.Sprintf("%14.3f", r.LegacyNs), fmt.Sprintf("%8.2fx", r.Speedup)
		if r.LegacyNs == 0 {
			leg, sp = fmt.Sprintf("%14s", "-"), fmt.Sprintf("%9s", "-")
			skipped = true
		}
		fmt.Fprintf(w, "%-7s %9d %9d %-7s %s %14.3f %s\n",
			r.Layout, r.G, r.N, r.Tier, leg, r.SingleNs, sp)
	}
	if skipped {
		fmt.Fprintf(w, "(legacy side skipped for G > %d: the per-group walk is O(G) full scans)\n", hiCardLegacyCap)
	}
}

// PrintGroupBy renders the grouped A/B grid.
func PrintGroupBy(w io.Writer, rows []GroupByRow, cfg Config) {
	fmt.Fprintln(w, "GroupBy — single-pass bit-sliced partition vs legacy per-group walk")
	fmt.Fprintf(w, "(k=%d; no filter; single thread; partition + aggregate per iteration; interleaved medians of %d rounds)\n",
		cfg.K, fusedRounds)
	fmt.Fprintf(w, "%-7s %-6s %5s %14s %14s %9s\n",
		"layout", "agg", "G", "legacy ns/t", "single ns/t", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %-6s %5d %14.3f %14.3f %8.2fx\n",
			r.Layout, r.Agg, r.G, r.LegacyNs, r.SingleNs, r.Speedup)
	}
}
