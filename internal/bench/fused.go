package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"bpagg"
	"bpagg/internal/word"
)

// Fused A/B experiment: the fused scan→aggregate pipeline against the
// two-phase path (scan to bitmap, then aggregate) on the same table and
// the same selective single-predicate query — the setting of the paper's
// Q1 with the filter bitmap eliminated. Two segment mixes bracket the
// per-segment aggregate caches: uniform data leaves essentially no
// all-match segments (every live segment is computed, a cache-miss mix),
// while sorted data turns the matching prefix into all-match segments the
// caches answer outright (cache-hit mix).
//
// Measurements are interleaved — fused and two-phase alternate in short
// rounds and the per-side median is reported — so drift (thermal, cache
// state, scheduler) lands on both sides instead of biasing whichever ran
// second.

// FusedRow is one fused-vs-two-phase comparison.
type FusedRow struct {
	Layout  string  // "VBP" | "HBP"
	Agg     string  // "COUNT" | "SUM" | "MIN"
	Mix     string  // "uniform" (cache-miss) | "sorted" (cache-hit)
	TwoNs   float64 // two-phase ns/tuple (median of rounds)
	FusedNs float64 // fused ns/tuple (median of rounds)
	Speedup float64 // TwoNs / FusedNs
}

// fusedRounds is the number of interleaved measurement rounds per side.
const fusedRounds = 5

// measureOnce runs fn until minTime accumulates, returning ns/tuple.
func measureOnce(n int, minTime time.Duration, fn func()) float64 {
	var iters int
	var elapsed time.Duration
	for elapsed < minTime {
		start := time.Now()
		fn()
		elapsed += time.Since(start)
		iters++
	}
	return float64(elapsed.Nanoseconds()) / float64(iters) / float64(n)
}

// measureAB interleaves rounds of a and b and returns each side's median
// ns/tuple.
func measureAB(n int, minTime time.Duration, a, b func()) (aNs, bNs float64) {
	a()
	b() // warm caches and one-time allocations on both sides
	per := minTime / fusedRounds
	if per <= 0 {
		per = time.Millisecond
	}
	as := make([]float64, fusedRounds)
	bs := make([]float64, fusedRounds)
	for r := 0; r < fusedRounds; r++ {
		as[r] = measureOnce(n, per, a)
		bs[r] = measureOnce(n, per, b)
	}
	sort.Float64s(as)
	sort.Float64s(bs)
	return as[fusedRounds/2], bs[fusedRounds/2]
}

// fusedTable packs one k-bit column in the given layout.
func fusedTable(layout bpagg.Layout, vals []uint64, k int) *bpagg.Table {
	return bpagg.NewTableFromColumns(
		[]string{"x"},
		[]*bpagg.Column{bpagg.FromValues(layout, k, vals)},
	)
}

// Fused runs the A/B grid: layout × segment mix × aggregate, single
// predicate at cfg.Sel selectivity, single-threaded (the fused path's
// thread scaling is covered by the property tests; serial A/B keeps the
// comparison noise-free).
func Fused(cfg Config) []FusedRow {
	rng := rand.New(rand.NewSource(cfg.Seed))
	max := word.LowMask(cfg.K)
	uniform := make([]uint64, cfg.N)
	for i := range uniform {
		uniform[i] = rng.Uint64() & max
	}
	sorted := append([]uint64(nil), uniform...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// The threshold keeping ~cfg.Sel of a uniform column.
	cut := uint64(float64(max) * cfg.Sel)
	pred := bpagg.Less(cut)

	var rows []FusedRow
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		for _, mix := range []struct {
			name string
			vals []uint64
		}{{"uniform", uniform}, {"sorted", sorted}} {
			tbl := fusedTable(layout, mix.vals, cfg.K)
			twoQ := func(run func(q *bpagg.Query)) func() {
				return func() {
					q := tbl.Query().Where("x", pred)
					q.Selection() // materialize: forces the two-phase path
					run(q)
				}
			}
			fusedQ := func(run func(q *bpagg.Query)) func() {
				return func() {
					run(tbl.Query().Where("x", pred))
				}
			}
			for _, agg := range []struct {
				name string
				run  func(q *bpagg.Query)
			}{
				{"COUNT", func(q *bpagg.Query) { q.CountRows() }},
				{"SUM", func(q *bpagg.Query) { q.Sum("x") }},
				{"MIN", func(q *bpagg.Query) { q.Min("x") }},
			} {
				twoNs, fusedNs := measureAB(cfg.N, cfg.MinTime, twoQ(agg.run), fusedQ(agg.run))
				rows = append(rows, FusedRow{
					Layout: layout.String(), Agg: agg.name, Mix: mix.name,
					TwoNs: twoNs, FusedNs: fusedNs, Speedup: twoNs / fusedNs,
				})
			}
		}
	}
	return rows
}

// PrintFused renders the fused A/B grid.
func PrintFused(w io.Writer, rows []FusedRow, cfg Config) {
	fmt.Fprintln(w, "Fused — scan+aggregate pipeline vs two-phase (scan to bitmap, then aggregate)")
	fmt.Fprintf(w, "(k=%d; selectivity %.2f; single predicate; single thread; interleaved medians of %d rounds)\n",
		cfg.K, cfg.Sel, fusedRounds)
	fmt.Fprintf(w, "%-7s %-8s %-9s %14s %14s %9s\n",
		"layout", "agg", "mix", "two-phase ns/t", "fused ns/t", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %-8s %-9s %14.3f %14.3f %8.2fx\n",
			r.Layout, r.Agg, r.Mix, r.TwoNs, r.FusedNs, r.Speedup)
	}
}
