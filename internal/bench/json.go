package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"bpagg/internal/tpch"
)

// Machine-readable benchmark results. One Report is one full
// bpagg-bench run; BENCH_results.json files written from it are the
// perf trajectory CI tracks, so the schema is versioned and additive:
// new fields may appear, existing ones keep their meaning.

// ReportSchema identifies the JSON layout of a Report.
const ReportSchema = "bpagg-bench/v1"

// Report is the machine-readable form of one benchmark run.
type Report struct {
	Schema        string              `json:"schema"`
	Timestamp     string              `json:"timestamp"` // RFC 3339, UTC
	Host          ReportHost          `json:"host"`
	Config        ReportConfig        `json:"config"`
	Fig5          []MicroJSON         `json:"fig5,omitempty"`
	Fig6          []MicroJSON         `json:"fig6,omitempty"`
	Fig7          []MicroJSON         `json:"fig7,omitempty"`
	Fig8          []Fig8JSON          `json:"fig8,omitempty"`
	Table2        []Table2JSON        `json:"table2,omitempty"`
	Fused         []FusedJSON         `json:"fused,omitempty"`
	GroupBy       []GroupByJSON       `json:"groupby,omitempty"`
	GroupByHiCard []GroupByHiCardJSON `json:"groupby_hicard,omitempty"`
	Server        []ServerJSON        `json:"concurrent_clients,omitempty"`
	SumKernels    []SumKernelsJSON    `json:"sum_kernels,omitempty"`
	SumKernelsW   []SumKernelsWJSON   `json:"sum_kernels_wide,omitempty"`
	ShardScale    []ShardScaleJSON    `json:"shard_scale,omitempty"`
	RangeScale    []RangeScaleJSON    `json:"range_scale,omitempty"`
}

// ReportHost records the machine the run happened on — enough to know
// when two reports are comparable.
type ReportHost struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// ReportConfig echoes the experiment parameters.
type ReportConfig struct {
	N         int     `json:"n"`
	K         int     `json:"k"`
	Sel       float64 `json:"sel"`
	Threads   int     `json:"threads"`
	Seed      int64   `json:"seed"`
	MinTimeMs float64 `json:"min_time_ms"`
}

// MicroJSON is a MicroRow with enums rendered as strings.
type MicroJSON struct {
	Layout  string  `json:"layout"`
	Agg     string  `json:"agg"`
	Param   float64 `json:"param"`
	NBPNs   float64 `json:"nbp_ns_per_tuple"`
	BPNs    float64 `json:"bp_ns_per_tuple"`
	Speedup float64 `json:"speedup"`
}

// Fig8JSON is a Fig8Row with enums rendered as strings.
type Fig8JSON struct {
	Layout   string  `json:"layout"`
	Agg      string  `json:"agg"`
	SerialNs float64 `json:"serial_ns_per_tuple"`
	MT       float64 `json:"mt_speedup"`
	SIMD     float64 `json:"simd_speedup"`
	Both     float64 `json:"both_speedup"`
}

// Table2JSON is a Table2Row tagged with its layout.
type Table2JSON struct {
	Layout      string  `json:"layout"`
	Query       string  `json:"query"`
	Selectivity float64 `json:"selectivity"`
	ScanNs      float64 `json:"scan_ns_per_tuple"`
	AggNBPNs    float64 `json:"agg_nbp_ns_per_tuple"`
	AggBPNs     float64 `json:"agg_bp_ns_per_tuple"`
	AggAutoNs   float64 `json:"agg_auto_ns_per_tuple"`
	AggImprove  float64 `json:"agg_improve_pct"`
	AutoImprove float64 `json:"auto_improve_pct"`
	TotImprove  float64 `json:"total_improve_pct"`
}

// NewReport starts a Report for one run of the given configuration.
func NewReport(cfg Config) *Report {
	return &Report{
		Schema:    ReportSchema,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Host: ReportHost{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Config: ReportConfig{
			N: cfg.N, K: cfg.K, Sel: cfg.Sel, Threads: cfg.Threads,
			Seed: cfg.Seed, MinTimeMs: float64(cfg.MinTime) / float64(time.Millisecond),
		},
	}
}

func microJSON(rows []MicroRow) []MicroJSON {
	out := make([]MicroJSON, len(rows))
	for i, r := range rows {
		out[i] = MicroJSON{
			Layout: r.Layout.String(), Agg: r.Agg.String(), Param: r.Param,
			NBPNs: r.NBPns, BPNs: r.BPns, Speedup: r.Speedup,
		}
	}
	return out
}

// AddFig5 records a Figure 5 sweep (and likewise for the others below).
// All Add methods are no-ops on a nil Report, so callers can thread one
// pointer through unconditionally and only allocate when JSON output is
// requested.
func (r *Report) AddFig5(rows []MicroRow) {
	if r != nil {
		r.Fig5 = microJSON(rows)
	}
}

// AddFig6 records a Figure 6 sweep.
func (r *Report) AddFig6(rows []MicroRow) {
	if r != nil {
		r.Fig6 = microJSON(rows)
	}
}

// AddFig7 records a Figure 7 sweep.
func (r *Report) AddFig7(rows []MicroRow) {
	if r != nil {
		r.Fig7 = microJSON(rows)
	}
}

// AddFig8 records the threading/wide-word grid.
func (r *Report) AddFig8(rows []Fig8Row) {
	if r == nil {
		return
	}
	for _, row := range rows {
		r.Fig8 = append(r.Fig8, Fig8JSON{
			Layout: row.Layout.String(), Agg: row.Agg.String(),
			SerialNs: row.SerialNs, MT: row.MT, SIMD: row.SIMD, Both: row.Both,
		})
	}
}

// AddTable2 records one layout's Table II queries.
func (r *Report) AddTable2(layout tpch.Layout, rows []Table2Row) {
	if r == nil {
		return
	}
	for _, row := range rows {
		r.Table2 = append(r.Table2, Table2JSON{
			Layout: layout.String(), Query: row.Query, Selectivity: row.Selectivity,
			ScanNs: row.ScanNs, AggNBPNs: row.AggNBPNs, AggBPNs: row.AggBPNs,
			AggAutoNs: row.AggAutoNs, AggImprove: row.AggImprove,
			AutoImprove: row.AutoImprove, TotImprove: row.TotImprove,
		})
	}
}

// FusedJSON is a FusedRow in the report.
type FusedJSON struct {
	Layout     string  `json:"layout"`
	Agg        string  `json:"agg"`
	Mix        string  `json:"mix"`
	TwoPhaseNs float64 `json:"two_phase_ns_per_tuple"`
	FusedNs    float64 `json:"fused_ns_per_tuple"`
	Speedup    float64 `json:"speedup"`
}

// AddFused records the fused-vs-two-phase A/B grid.
func (r *Report) AddFused(rows []FusedRow) {
	if r == nil {
		return
	}
	for _, row := range rows {
		r.Fused = append(r.Fused, FusedJSON{
			Layout: row.Layout, Agg: row.Agg, Mix: row.Mix,
			TwoPhaseNs: row.TwoNs, FusedNs: row.FusedNs, Speedup: row.Speedup,
		})
	}
}

// GroupByJSON is a GroupByRow in the report.
type GroupByJSON struct {
	Layout   string  `json:"layout"`
	Agg      string  `json:"agg"`
	G        int     `json:"groups"`
	LegacyNs float64 `json:"legacy_ns_per_tuple"`
	SingleNs float64 `json:"single_pass_ns_per_tuple"`
	Speedup  float64 `json:"speedup"`
}

// AddGroupBy records the single-pass-vs-legacy grouped A/B grid.
func (r *Report) AddGroupBy(rows []GroupByRow) {
	if r == nil {
		return
	}
	for _, row := range rows {
		r.GroupBy = append(r.GroupBy, GroupByJSON{
			Layout: row.Layout, Agg: row.Agg, G: row.G,
			LegacyNs: row.LegacyNs, SingleNs: row.SingleNs, Speedup: row.Speedup,
		})
	}
}

// GroupByHiCardJSON is a GroupByHiCardRow in the report. Zero legacy/
// speedup fields mean the legacy side was skipped at that cardinality
// (printed in the text table), not measured as instant.
type GroupByHiCardJSON struct {
	Layout   string  `json:"layout"`
	G        int     `json:"groups"`
	N        int     `json:"n"`
	Tier     string  `json:"tier"`
	LegacyNs float64 `json:"legacy_ns_per_tuple,omitempty"`
	SingleNs float64 `json:"single_pass_ns_per_tuple"`
	Speedup  float64 `json:"speedup,omitempty"`
}

// AddGroupByHiCard records the high-cardinality grouped sweep.
func (r *Report) AddGroupByHiCard(rows []GroupByHiCardRow) {
	if r == nil {
		return
	}
	for _, row := range rows {
		r.GroupByHiCard = append(r.GroupByHiCard, GroupByHiCardJSON{
			Layout: row.Layout, G: row.G, N: row.N, Tier: row.Tier,
			LegacyNs: row.LegacyNs, SingleNs: row.SingleNs, Speedup: row.Speedup,
		})
	}
}

// ServerJSON is a ServerRow in the report.
type ServerJSON struct {
	Mode         string  `json:"mode"`
	Clients      int     `json:"clients"`
	Requests     int     `json:"requests"`
	QPS          float64 `json:"qps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	WordsTouched uint64  `json:"words_touched"`
	Scans        uint64  `json:"scans"`
	Batches      uint64  `json:"batches"`
	Batched      uint64  `json:"batched"`
}

// AddServer records the concurrent-clients serving A/B.
func (r *Report) AddServer(rows []ServerRow) {
	if r == nil {
		return
	}
	for _, row := range rows {
		r.Server = append(r.Server, ServerJSON{
			Mode: row.Mode, Clients: row.Clients, Requests: row.Requests,
			QPS: row.QPS, P50Ms: row.P50Ms, P99Ms: row.P99Ms,
			WordsTouched: row.WordsTouched, Scans: row.Scans,
			Batches: row.Batches, Batched: row.Batched,
		})
	}
}

// SumKernelsJSON is a SumKernelsRow in the report.
type SumKernelsJSON struct {
	Route    string  `json:"route"`
	Mix      string  `json:"mix"`
	LegacyNs float64 `json:"legacy_ns_per_tuple"`
	PosPopNs float64 `json:"pospop_ns_per_tuple"`
	Speedup  float64 `json:"speedup"`
}

// SumKernelsWJSON is a SumKernelsWideRow in the report.
type SumKernelsWJSON struct {
	Mix    string  `json:"mix"`
	CoreNs float64 `json:"core_ns_per_tuple"`
	WideNs float64 `json:"wide_ns_per_tuple"`
	Ratio  float64 `json:"ratio"`
}

// AddSumKernels records both SUM-kernel A/B grids.
func (r *Report) AddSumKernels(rows []SumKernelsRow, wideRows []SumKernelsWideRow) {
	if r == nil {
		return
	}
	for _, row := range rows {
		r.SumKernels = append(r.SumKernels, SumKernelsJSON{
			Route: row.Route, Mix: row.Mix,
			LegacyNs: row.LegacyNs, PosPopNs: row.PosPopNs, Speedup: row.Speedup,
		})
	}
	for _, row := range wideRows {
		r.SumKernelsW = append(r.SumKernelsW, SumKernelsWJSON{
			Mix: row.Mix, CoreNs: row.CoreNs, WideNs: row.WideNs, Ratio: row.Ratio,
		})
	}
}

// ShardScaleJSON is a ShardScaleRow in the report.
type ShardScaleJSON struct {
	Layout  string  `json:"layout"`
	Mix     string  `json:"mix"`
	Shards  int     `json:"shards"`
	Threads int     `json:"threads"`
	FlatNs  float64 `json:"flat_ns_per_tuple"`
	ShardNs float64 `json:"shard_ns_per_tuple"`
	Speedup float64 `json:"speedup"`
}

// AddShardScale records the flat-vs-sharded shard-count sweep.
func (r *Report) AddShardScale(rows []ShardScaleRow) {
	if r == nil {
		return
	}
	for _, row := range rows {
		r.ShardScale = append(r.ShardScale, ShardScaleJSON{
			Layout: row.Layout, Mix: row.Mix, Shards: row.Shards,
			Threads: row.Threads, FlatNs: row.FlatNs, ShardNs: row.ShardNs,
			Speedup: row.Speedup,
		})
	}
}

// RangeScaleJSON is a RangeScaleRow in the report.
type RangeScaleJSON struct {
	Layout   string  `json:"layout"`
	Agg      string  `json:"agg"`
	WidthPct float64 `json:"width_pct"`
	Rows     int     `json:"rows"`
	IndexNs  float64 `json:"index_ns_per_op"`
	ScanNs   float64 `json:"scan_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

// AddRangeScale records the prefix-index-vs-fused-scan width sweep.
func (r *Report) AddRangeScale(rows []RangeScaleRow) {
	if r == nil {
		return
	}
	for _, row := range rows {
		r.RangeScale = append(r.RangeScale, RangeScaleJSON{
			Layout: row.Layout, Agg: row.Agg, WidthPct: row.WidthPct,
			Rows: row.Rows, IndexNs: row.IndexNs, ScanNs: row.ScanNs,
			Speedup: row.Speedup,
		})
	}
}

// WriteJSON writes the report, indented, with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
