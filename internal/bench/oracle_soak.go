package bench

import (
	"fmt"
	"io"
	"time"

	"bpagg/internal/oracle/diff"
)

// OracleSoak runs the differential oracle harness (internal/oracle/diff)
// over several seeds with the Deep generator profile — wider bit-width,
// τ, size, and predicate coverage than the PR-gating sweep. Check's
// matrix includes the positional range/window axis, so the soak sweeps
// the prefix-sum index against the oracle nightly; a sharded pass at the
// most adversarial shard size (the fixed non-divisible one) covers the
// per-shard range translation too. It is the nightly complement to
// TestOracleDifferentialSweep and is deliberately not part of the "all"
// experiment set: it validates correctness, not performance. Returns the
// total number of divergences found; every divergence prints with its
// case name, which embeds the seed needed to replay it (README
// "Reproducing a divergence").
func OracleSoak(w io.Writer, startSeed int64, seeds int) int {
	total := 0
	for s := int64(0); s < int64(seeds); s++ {
		seed := startSeed + s
		cases := diff.Cases(diff.GenConfig{Seed: seed, Deep: true})
		start := time.Now()
		bad := 0
		for _, c := range cases {
			if err := diff.Check(c); err != nil {
				bad++
				fmt.Fprintf(w, "DIVERGENCE %s:\n  %v\n", c.Name, err)
			}
			sizes := diff.ShardSizes(&c)
			if err := diff.CheckSharded(c, sizes[len(sizes)-1]); err != nil {
				bad++
				fmt.Fprintf(w, "DIVERGENCE %s (sharded):\n  %v\n", c.Name, err)
			}
		}
		hicard := diff.HighCardCases(diff.GenConfig{Seed: seed, Deep: true})
		for _, c := range hicard {
			if err := diff.CheckGrouped(c); err != nil {
				bad++
				fmt.Fprintf(w, "DIVERGENCE %s:\n  %v\n", c.Name, err)
			}
		}
		total += bad
		fmt.Fprintf(w, "oracle-soak seed %d: %d cases (%d high-card grouped), %d divergences [%v]\n",
			seed, len(cases)+len(hicard), len(hicard), bad, time.Since(start).Round(time.Millisecond))
	}
	return total
}
