package bench

import (
	"fmt"
	"io"

	"bpagg/internal/tpch"
)

// PrintFig5 renders the selectivity sweep as the speedup table behind the
// paper's Figure 5 bars.
func PrintFig5(w io.Writer, rows []MicroRow) {
	fmt.Fprintln(w, "Figure 5 — aggregation speedup of BP over NBP, varying selectivity")
	fmt.Fprintln(w, "(k=25; single thread; ns/tuple of the aggregation phase)")
	fmt.Fprintf(w, "%-7s %-8s %12s %12s %12s %9s\n",
		"layout", "agg", "selectivity", "NBP ns/t", "BP ns/t", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %-8s %12.2f %12.3f %12.3f %8.1fx\n",
			r.Layout, r.Agg, r.Param, r.NBPns, r.BPns, r.Speedup)
	}
}

// PrintFig6 renders the value-width sweep (paper Figure 6).
func PrintFig6(w io.Writer, rows []MicroRow) {
	fmt.Fprintln(w, "Figure 6 — aggregation cost varying value width k")
	fmt.Fprintln(w, "(selectivity 0.1; single thread; ns/tuple of the aggregation phase)")
	fmt.Fprintf(w, "%-7s %-8s %8s %12s %12s %9s\n",
		"layout", "agg", "k", "NBP ns/t", "BP ns/t", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %-8s %8.0f %12.3f %12.3f %8.1fx\n",
			r.Layout, r.Agg, r.Param, r.NBPns, r.BPns, r.Speedup)
	}
}

// PrintFig7 renders the data-size sweep (paper Figure 7) with total times.
func PrintFig7(w io.Writer, rows []MicroRow) {
	fmt.Fprintln(w, "Figure 7 — aggregation cost varying data size")
	fmt.Fprintln(w, "(k=25; selectivity 0.1; single thread)")
	fmt.Fprintf(w, "%-7s %-8s %12s %12s %12s %12s %12s\n",
		"layout", "agg", "tuples", "NBP ms", "BP ms", "NBP ns/t", "BP ns/t")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %-8s %12.0f %12.1f %12.1f %12.3f %12.3f\n",
			r.Layout, r.Agg, r.Param,
			r.NBPns*r.Param/1e6, r.BPns*r.Param/1e6, r.NBPns, r.BPns)
	}
}

// PrintFig8 renders the acceleration speedups (paper Figure 8).
func PrintFig8(w io.Writer, rows []Fig8Row, threads int) {
	fmt.Fprintf(w, "Figure 8 — speedup over single-threaded bit-parallel (threads=%d, wide=4x64)\n", threads)
	fmt.Fprintf(w, "%-7s %-8s %12s %10s %10s %10s\n",
		"layout", "agg", "serial ns/t", "MT", "SIMD", "MT+SIMD")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %-8s %12.3f %9.1fx %9.1fx %9.1fx\n",
			r.Layout, r.Agg, r.SerialNs, r.MT, r.SIMD, r.Both)
	}
}

// PrintTable2 renders one layout section of Table II. The "auto" columns
// report the optimizer policy of §III: reconstruction below the layout's
// measured crossover selectivity, bit-parallel above it.
func PrintTable2(w io.Writer, layout tpch.Layout, rows []Table2Row) {
	fmt.Fprintf(w, "Table II (%s) — TPC-H style queries, ns/tuple (scan is bit-parallel for both)\n", layout)
	fmt.Fprintf(w, "%-5s %6s %10s %10s %10s %10s %9s %9s %10s %10s %9s\n",
		"query", "sel", "scan", "agg NBP", "agg BP", "agg auto", "agg impr", "auto impr", "tot NBP", "tot BP", "tot impr")
	var aggImpSum, autoImpSum, totImpSum float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %6.3f %10.3f %10.3f %10.3f %10.3f %8.1f%% %8.1f%% %10.3f %10.3f %8.1f%%\n",
			r.Query, r.Selectivity, r.ScanNs, r.AggNBPNs, r.AggBPNs, r.AggAutoNs,
			r.AggImprove, r.AutoImprove, r.TotalNBPNs, r.TotalBPNs, r.TotImprove)
		aggImpSum += r.AggImprove
		autoImpSum += r.AutoImprove
		totImpSum += r.TotImprove
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "%-5s %6s %10s %10s %10s %10s %8.1f%% %8.1f%% %10s %10s %8.1f%%\n",
		"avg", "", "", "", "", "", aggImpSum/n, autoImpSum/n, "", "", totImpSum/n)
}
