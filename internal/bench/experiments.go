package bench

import (
	"math/rand"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/nbp"
	"bpagg/internal/parallel"
	"bpagg/internal/tpch"
)

// Agg identifies the aggregate measured by the micro-benchmarks. The paper
// reports SUM, MIN/MAX (one curve — MAX mirrors MIN) and MEDIAN; COUNT is
// trivial and AVG is SUM plus COUNT.
type Agg int

// Micro-benchmark aggregates.
const (
	AggSum Agg = iota
	AggMinMax
	AggMedian
)

// String returns the paper's label for the aggregate.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggMinMax:
		return "MIN/MAX"
	case AggMedian:
		return "MEDIAN"
	default:
		return "?"
	}
}

// Aggs lists the measured aggregates in presentation order.
var Aggs = []Agg{AggSum, AggMinMax, AggMedian}

// Layouts lists both storage layouts in presentation order.
var Layouts = []tpch.Layout{tpch.VBP, tpch.HBP}

// WithSelectivity derives a workload sharing w's packed columns but with a
// fresh Bernoulli filter of the given selectivity.
func (w *Workload) WithSelectivity(sel float64, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	f := bitvec.New(w.N)
	for i := 0; i < w.N; i++ {
		if rng.Float64() < sel {
			f.Set(i)
		}
	}
	return &Workload{N: w.N, K: w.K, V: w.V, H: w.H, F: f}
}

// runBP returns a closure executing one bit-parallel aggregate evaluation.
func (w *Workload) runBP(layout tpch.Layout, agg Agg, o parallel.Options) func() {
	switch {
	case layout == tpch.VBP && agg == AggSum:
		return func() { parallel.VBPSum(w.V, w.F, o) }
	case layout == tpch.VBP && agg == AggMinMax:
		return func() { parallel.VBPMin(w.V, w.F, o) }
	case layout == tpch.VBP && agg == AggMedian:
		return func() { parallel.VBPMedian(w.V, w.F, o) }
	case layout == tpch.HBP && agg == AggSum:
		return func() { parallel.HBPSum(w.H, w.F, o) }
	case layout == tpch.HBP && agg == AggMinMax:
		return func() { parallel.HBPMin(w.H, w.F, o) }
	default:
		return func() { parallel.HBPMedian(w.H, w.F, o) }
	}
}

// runNBP returns a closure executing one baseline aggregate evaluation.
func (w *Workload) runNBP(layout tpch.Layout, agg Agg, o nbp.Options) func() {
	var src interface {
		At(i int) uint64
		Len() int
	}
	if layout == tpch.VBP {
		src = w.V
	} else {
		src = w.H
	}
	switch agg {
	case AggSum:
		return func() { nbp.SumOpt(src, w.F, o) }
	case AggMinMax:
		return func() { nbp.MinOpt(src, w.F, o) }
	default:
		return func() { nbp.MedianOpt(src, w.F, o) }
	}
}

// MicroRow is one data point of Figures 5-7: the aggregation-phase cost of
// both methods under one parameter setting.
type MicroRow struct {
	Layout  tpch.Layout
	Agg     Agg
	Param   float64 // selectivity (Fig 5), value width (Fig 6) or tuples (Fig 7)
	NBPns   float64 // baseline ns per tuple
	BPns    float64 // bit-parallel ns per tuple
	Speedup float64 // NBPns / BPns
}

// Fig5 sweeps filter selectivity at fixed k and n (paper Figure 5),
// single-threaded.
func Fig5(cfg Config) []MicroRow {
	base := NewWorkload(cfg.N, cfg.K, cfg.Sel, cfg.Seed)
	sels := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}
	var rows []MicroRow
	for _, sel := range sels {
		w := base.WithSelectivity(sel, cfg.Seed+int64(sel*1000))
		for _, layout := range Layouts {
			for _, agg := range Aggs {
				rows = append(rows, measureRow(cfg, w, layout, agg, sel))
			}
		}
	}
	return rows
}

// Fig6 sweeps the value width k at fixed selectivity and n (paper
// Figure 6), single-threaded.
func Fig6(cfg Config) []MicroRow {
	ks := []int{2, 5, 10, 15, 20, 25, 30, 40, 50}
	var rows []MicroRow
	for _, k := range ks {
		w := NewWorkload(cfg.N, k, cfg.Sel, cfg.Seed)
		for _, layout := range Layouts {
			for _, agg := range Aggs {
				rows = append(rows, measureRow(cfg, w, layout, agg, float64(k)))
			}
		}
	}
	return rows
}

// Fig7 sweeps the tuple count at fixed k and selectivity (paper Figure 7),
// single-threaded. Param carries n; NBPns/BPns stay per tuple so linear
// scaling shows as flat lines, and total time is Param * ns.
func Fig7(cfg Config) []MicroRow {
	var rows []MicroRow
	for mult := 1; mult <= 4; mult++ {
		n := cfg.N * mult
		w := NewWorkload(n, cfg.K, cfg.Sel, cfg.Seed)
		for _, layout := range Layouts {
			for _, agg := range Aggs {
				rows = append(rows, measureRow(cfg, w, layout, agg, float64(n)))
			}
		}
	}
	return rows
}

func measureRow(cfg Config, w *Workload, layout tpch.Layout, agg Agg, param float64) MicroRow {
	nbpNs := MeasureNsPerTuple(w.N, cfg.MinTime, w.runNBP(layout, agg, nbp.Options{}))
	bpNs := MeasureNsPerTuple(w.N, cfg.MinTime, w.runBP(layout, agg, parallel.Options{}))
	return MicroRow{
		Layout: layout, Agg: agg, Param: param,
		NBPns: nbpNs, BPns: bpNs, Speedup: nbpNs / bpNs,
	}
}

// Fig8Row is one bar group of Figure 8: speedups of the accelerated
// bit-parallel variants over the single-threaded bit-parallel baseline.
type Fig8Row struct {
	Layout   tpch.Layout
	Agg      Agg
	SerialNs float64
	MT       float64 // multi-threading only
	SIMD     float64 // wide words only
	Both     float64 // multi-threading + wide words
}

// Fig8 measures the multi-threading and wide-word speedups (paper
// Figure 8).
func Fig8(cfg Config) []Fig8Row {
	w := NewWorkload(cfg.N, cfg.K, cfg.Sel, cfg.Seed)
	var rows []Fig8Row
	for _, layout := range Layouts {
		for _, agg := range Aggs {
			serial := MeasureNsPerTuple(w.N, cfg.MinTime, w.runBP(layout, agg, parallel.Options{}))
			mt := MeasureNsPerTuple(w.N, cfg.MinTime, w.runBP(layout, agg, parallel.Options{Threads: cfg.Threads}))
			simd := MeasureNsPerTuple(w.N, cfg.MinTime, w.runBP(layout, agg, parallel.Options{Wide: true}))
			both := MeasureNsPerTuple(w.N, cfg.MinTime, w.runBP(layout, agg, parallel.Options{Threads: cfg.Threads, Wide: true}))
			rows = append(rows, Fig8Row{
				Layout: layout, Agg: agg, SerialNs: serial,
				MT: serial / mt, SIMD: serial / simd, Both: serial / both,
			})
		}
	}
	return rows
}

// Table2Row is one column of Table II: per-query scan and aggregation
// costs for both methods, with the paper's improvement percentages.
type Table2Row struct {
	Query       string
	Selectivity float64
	ScanNs      float64 // bit-parallel filter scan, ns/tuple
	AggNBPNs    float64
	AggBPNs     float64
	AggAutoNs   float64 // optimizer policy: NBP below the crossover, BP above
	AggImprove  float64 // (NBP-BP)/NBP * 100
	AutoImprove float64 // (NBP-Auto)/NBP * 100
	TotalNBPNs  float64
	TotalBPNs   float64
	TotImprove  float64
}

// Table2 runs the nine TPC-H queries in one layout (paper Table II;
// multi-threaded on both methods, wide words on the bit-parallel side,
// mirroring the paper's "multi-threaded; SIMD-enabled" setting).
func Table2(cfg Config, layout tpch.Layout) []Table2Row {
	var rows []Table2Row
	for _, q := range tpch.Queries() {
		inst := tpch.Build(q, layout, cfg.N, cfg.Seed)
		var f *bitvec.Bitmap
		scanNs := MeasureNsPerTuple(cfg.N, cfg.MinTime, func() { f = inst.Scan() })
		bpOpts := parallel.Options{Threads: cfg.Threads, Wide: true}
		nbpOpts := nbp.Options{Threads: cfg.Threads}
		nbpNs := MeasureNsPerTuple(cfg.N, cfg.MinTime, func() { inst.RunAggNBP(f, nbpOpts) })
		bpNs := MeasureNsPerTuple(cfg.N, cfg.MinTime, func() { inst.RunAggBP(f, bpOpts) })
		autoNs := MeasureNsPerTuple(cfg.N, cfg.MinTime, func() { inst.RunAggAuto(f, bpOpts, nbpOpts) })
		rows = append(rows, Table2Row{
			Query:       q.Name,
			Selectivity: q.Selectivity,
			ScanNs:      scanNs,
			AggNBPNs:    nbpNs,
			AggBPNs:     bpNs,
			AggAutoNs:   autoNs,
			AggImprove:  improvement(nbpNs, bpNs),
			AutoImprove: improvement(nbpNs, autoNs),
			TotalNBPNs:  scanNs + nbpNs,
			TotalBPNs:   scanNs + bpNs,
			TotImprove:  improvement(scanNs+nbpNs, scanNs+bpNs),
		})
	}
	return rows
}

func improvement(nbpCost, bpCost float64) float64 {
	if nbpCost == 0 {
		return 0
	}
	return (nbpCost - bpCost) / nbpCost * 100
}

// Sanity verifies on a small instance that both methods agree before a
// long measurement run; it returns false on any mismatch.
func Sanity(cfg Config) bool {
	for _, q := range tpch.Queries() {
		for _, layout := range Layouts {
			inst := tpch.Build(q, layout, 20000, cfg.Seed)
			f := inst.Scan()
			bp := inst.RunAggBP(f, parallel.Options{Threads: cfg.Threads, Wide: true})
			nb := inst.RunAggNBP(f, nbp.Options{Threads: cfg.Threads})
			for i := range bp {
				if bp[i] != nb[i] {
					return false
				}
			}
		}
	}
	// Micro workload cross-check.
	w := NewWorkload(50000, cfg.K, cfg.Sel, cfg.Seed)
	if parallel.VBPSum(w.V, w.F, parallel.Options{}) != nbp.Sum(w.V, w.F) {
		return false
	}
	if parallel.HBPSum(w.H, w.F, parallel.Options{}) != nbp.Sum(w.H, w.F) {
		return false
	}
	mv, okv := parallel.VBPMedian(w.V, w.F, parallel.Options{})
	mn, okn := nbp.Median(w.V, w.F)
	if mv != mn || okv != okn {
		return false
	}
	_ = core.Count(w.F)
	return true
}
