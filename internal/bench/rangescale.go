package bench

import (
	"fmt"
	"io"
	"math/rand"

	"bpagg"
	"bpagg/internal/word"
)

// Range-scale A/B experiment: the prefix-sum range index against the
// fused scan pipeline, on the same filter-free positional range, across
// a range-width sweep from 1% to 100% of the table. The index side is a
// plain Range aggregate — answered from one 128-bit prefix difference
// (SUM) or one sparse-table lookup (MIN) plus the two masked boundary
// segments, so its cost is width-independent. The scan side carries an
// always-true predicate, which disables the index route and prices what
// the same answer costs through the fused pipeline: a full predicate
// scan, the range mask intersection, and a width-proportional aggregate.
//
// Like the fused experiment, measurements are interleaved — index and
// scan alternate in short rounds and the per-side median is reported.

// RangeScaleRow is one index-vs-scan comparison at a range width.
type RangeScaleRow struct {
	Layout   string  // "VBP" | "HBP"
	Agg      string  // "SUM" | "MIN"
	WidthPct float64 // range width as a percentage of the table
	Rows     int     // range width in rows
	IndexNs  float64 // index-served ns/op (median of rounds)
	ScanNs   float64 // fused-scan fallback ns/op (median of rounds)
	Speedup  float64 // ScanNs / IndexNs
}

// rangeScaleWidths is the width sweep, in fractions of the table.
var rangeScaleWidths = []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.00}

// RangeScale runs the sweep: layout × width × {SUM, MIN} over one
// uniform k-bit column. Ranges start at an interior, segment-misaligned
// offset so both boundary segments are partial — the fringe kernels run
// on every index-served call.
func RangeScale(cfg Config) []RangeScaleRow {
	rng := rand.New(rand.NewSource(cfg.Seed))
	max := word.LowMask(cfg.K)
	vals := make([]uint64, cfg.N)
	for i := range vals {
		vals[i] = rng.Uint64() & max
	}
	truePred := bpagg.LessEq(max)

	var rows []RangeScaleRow
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		tbl := fusedTable(layout, vals, cfg.K)
		for _, frac := range rangeScaleWidths {
			width := int(float64(cfg.N) * frac)
			if width < 1 {
				width = 1
			}
			lo := (cfg.N - width) / 3
			if lo == 0 && width < cfg.N {
				lo = 1
			}
			hi := lo + width
			for _, agg := range []struct {
				name      string
				idx, scan func()
			}{
				{"SUM",
					func() { tbl.Query().Range(lo, hi).Sum("x") },
					func() { tbl.Query().Where("x", truePred).Range(lo, hi).Sum("x") }},
				{"MIN",
					func() { tbl.Query().Range(lo, hi).Min("x") },
					func() { tbl.Query().Where("x", truePred).Range(lo, hi).Min("x") }},
			} {
				idxNs, scanNs := measureAB(1, cfg.MinTime, agg.idx, agg.scan)
				rows = append(rows, RangeScaleRow{
					Layout: layout.String(), Agg: agg.name,
					WidthPct: frac * 100, Rows: width,
					IndexNs: idxNs, ScanNs: scanNs, Speedup: scanNs / idxNs,
				})
			}
		}
	}
	return rows
}

// PrintRangeScale renders the range-scale sweep.
func PrintRangeScale(w io.Writer, rows []RangeScaleRow, cfg Config) {
	fmt.Fprintln(w, "Range scale — prefix-sum range index vs the fused scan fallback (filter-free positional ranges)")
	fmt.Fprintf(w, "(n=%d; k=%d; interior misaligned ranges; interleaved medians of %d rounds; ns per whole query)\n",
		cfg.N, cfg.K, fusedRounds)
	fmt.Fprintf(w, "%-7s %-5s %7s %10s %14s %14s %10s\n",
		"layout", "agg", "width%", "rows", "index ns/op", "scan ns/op", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %-5s %7.0f %10d %14.0f %14.0f %9.1fx\n",
			r.Layout, r.Agg, r.WidthPct, r.Rows, r.IndexNs, r.ScanNs, r.Speedup)
	}
}
