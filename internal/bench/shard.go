package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"bpagg"
	"bpagg/internal/word"
)

// Shard-scale A/B experiment: the sharded partitioned store against the
// flat table it was split from, on the same data and the same selective
// single-predicate SUM, across a shard-count sweep. Two mixes bracket the
// shard catalog: uniform data gives every shard the full value range so
// min/max pruning never fires (the sweep then prices pure fan-out/merge
// overhead), while sorted data gives each shard a disjoint value band so
// a selective threshold predicate prunes all but the matching prefix of
// shards before any zone map is consulted.
//
// Like the fused experiment, measurements are interleaved — flat and
// sharded alternate in short rounds and the per-side median is reported —
// so drift lands on both sides instead of biasing whichever ran second.

// ShardScaleRow is one flat-vs-sharded comparison at a shard count.
type ShardScaleRow struct {
	Layout  string  // "VBP" | "HBP"
	Mix     string  // "uniform" (no pruning) | "sorted" (catalog prunes)
	Shards  int     // shard count the table was split into
	Threads int     // worker count on both sides
	FlatNs  float64 // flat table ns/tuple (median of rounds)
	ShardNs float64 // sharded store ns/tuple (median of rounds)
	Speedup float64 // FlatNs / ShardNs
}

// shardScaleCounts is the shard-count sweep. 1 isolates the container's
// fixed cost (a single shard holds the whole table); the rest scale the
// fan-out and, on sorted data, the pruning resolution.
var shardScaleCounts = []int{1, 4, 16, 64}

// ShardScale runs the sweep: layout × mix × shard count, SUM under a
// threshold predicate at cfg.Sel selectivity, cfg.Threads workers on both
// sides so the comparison isolates the container, not the scheduler.
func ShardScale(cfg Config) []ShardScaleRow {
	rng := rand.New(rand.NewSource(cfg.Seed))
	max := word.LowMask(cfg.K)
	uniform := make([]uint64, cfg.N)
	for i := range uniform {
		uniform[i] = rng.Uint64() & max
	}
	sorted := append([]uint64(nil), uniform...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cut := uint64(float64(max) * cfg.Sel)
	pred := bpagg.Less(cut)

	var rows []ShardScaleRow
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		for _, mix := range []struct {
			name string
			vals []uint64
		}{{"uniform", uniform}, {"sorted", sorted}} {
			flat := fusedTable(layout, mix.vals, cfg.K)
			for _, shards := range shardScaleCounts {
				shardRows := (cfg.N + shards - 1) / shards
				st := bpagg.ShardTable(flat, shardRows)
				flatRun := func() {
					flat.Query().With(bpagg.Parallel(cfg.Threads)).Where("x", pred).Sum("x")
				}
				shardRun := func() {
					st.Query().With(bpagg.Parallel(cfg.Threads)).Where("x", pred).Sum("x")
				}
				flatNs, shardNs := measureAB(cfg.N, cfg.MinTime, flatRun, shardRun)
				rows = append(rows, ShardScaleRow{
					Layout: layout.String(), Mix: mix.name,
					Shards: st.NumShards(), Threads: cfg.Threads,
					FlatNs: flatNs, ShardNs: shardNs, Speedup: flatNs / shardNs,
				})
			}
		}
	}
	return rows
}

// PrintShardScale renders the shard-scale sweep.
func PrintShardScale(w io.Writer, rows []ShardScaleRow, cfg Config) {
	fmt.Fprintln(w, "Shard scale — sharded partitioned store vs the flat table it was split from")
	fmt.Fprintf(w, "(SUM under a threshold predicate; k=%d; selectivity %.2f; %d threads both sides; interleaved medians of %d rounds)\n",
		cfg.K, cfg.Sel, cfg.Threads, fusedRounds)
	fmt.Fprintf(w, "%-7s %-9s %7s %8s %13s %13s %9s\n",
		"layout", "mix", "shards", "threads", "flat ns/t", "shard ns/t", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %-9s %7d %8d %13.3f %13.3f %8.2fx\n",
			r.Layout, r.Mix, r.Shards, r.Threads, r.FlatNs, r.ShardNs, r.Speedup)
	}
}
