package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bpagg/internal/faultinject"
)

// TestChaos is the acceptance gate of the robustness envelope: 64
// concurrent clients hammer the server while faultinject drives slow
// segments and worker panics, clients disconnect mid-request, and
// per-request timeouts race the engine. The server must answer or shed
// every request with a sensible status (no hangs, no unexplained 500s),
// drain cleanly afterwards, and leak zero goroutines.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not -short")
	}
	baseline := runtime.NumGoroutine()
	defer faultinject.Reset()

	// Deterministic chaos: every 7th worker block is slow, every 29th
	// worker start panics.
	var ranges, starts atomic.Uint64
	faultinject.Set(faultinject.SiteWorkerRange, func(...any) error {
		if ranges.Add(1)%7 == 0 {
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	faultinject.Set(faultinject.SiteWorkerStart, func(...any) error {
		if starts.Add(1)%29 == 0 {
			panic("chaos: injected worker fault")
		}
		return nil
	})

	const (
		clients     = 64
		perClient   = 12
		maxParallel = 8
	)
	s, err := New(Config{
		Catalog:          testCatalog(),
		MaxConcurrent:    maxParallel,
		MaxQueue:         24,
		DefaultTimeout:   500 * time.Millisecond,
		BatchWindow:      time.Millisecond,
		BatchMinInflight: 4,
		MaxBatch:         16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	queries := []string{
		"SELECT SUM(qty), COUNT(*) WHERE region = 'EU'",      // batchable class A
		"SELECT AVG(price) WHERE region = 'EU'",              // class A again
		"SELECT SUM(price) WHERE qty >= 100",                 // batchable class B
		"SELECT MIN(price), MAX(price) GROUP BY region",      // grouped: never batched
		"SELECT MEDIAN(price) WHERE price BETWEEN 10 AND 90", // rendezvous-heavy
		"SELECT SUM(nope)",                                   // bad query
	}
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusTooManyRequests:     true,
		http.StatusInternalServerError: true, // injected worker panics
		http.StatusGatewayTimeout:      true,
		StatusClientClosedRequest:      true,
	}

	var (
		sent      atomic.Uint64
		answered  atomic.Uint64
		aborted   atomic.Uint64 // client disconnected before the answer
		badStatus sync.Map
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; i < perClient; i++ {
				sql := queries[(c+i)%len(queries)]
				url := ts.URL + "/query"
				if (c+i)%5 == 0 {
					url += "?timeout=3ms" // race the engine
				}
				ctx, cancel := context.WithCancel(context.Background())
				if (c+i)%9 == 0 {
					// Disconnect mid-request.
					time.AfterFunc(2*time.Millisecond, cancel)
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url,
					bytes.NewBufferString(sql))
				if err != nil {
					cancel()
					t.Errorf("building request: %v", err)
					continue
				}
				sent.Add(1)
				resp, err := client.Do(req)
				if err != nil {
					// Only our own disconnects may abort a request.
					if ctx.Err() == nil {
						t.Errorf("client %d: transport error without disconnect: %v", c, err)
					}
					aborted.Add(1)
					cancel()
					continue
				}
				var body Response
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				cancel()
				if decErr != nil {
					t.Errorf("client %d: undecodable response (status %d): %v", c, resp.StatusCode, decErr)
					continue
				}
				if !allowed[resp.StatusCode] {
					badStatus.Store(fmt.Sprintf("%d %s", resp.StatusCode, body.Kind), body.Error)
				}
				if resp.StatusCode == http.StatusInternalServerError && body.Kind != "panic" {
					badStatus.Store("500 "+body.Kind, body.Error)
				}
				answered.Add(1)
			}
		}(c)
	}
	wg.Wait()

	badStatus.Range(func(k, v any) bool {
		t.Errorf("unexpected response %v: %v", k, v)
		return true
	})
	if got := answered.Load() + aborted.Load(); got != sent.Load() {
		t.Errorf("sent %d, accounted %d (answered %d + aborted %d)",
			sent.Load(), got, answered.Load(), aborted.Load())
	}
	if c := s.CountersSnapshot(); c.Panics == 0 {
		t.Logf("note: no injected panic surfaced this run (counters %+v)", c)
	}

	// Graceful exit: drain must complete (faults are transient, nothing
	// is stuck) and the process must hold zero residual goroutines.
	faultinject.Reset()
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Errorf("drain after chaos: %v", err)
	}
	ts.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d > baseline %d\n%s", g, baseline, buf[:runtime.Stack(buf, true)])
	}
}
