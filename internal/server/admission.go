package server

import (
	"context"
	"errors"
	"sync"
)

// errShed reports an admission refusal because the wait queue is full:
// the client should back off and retry (HTTP 429 + Retry-After).
var errShed = errors.New("server: overloaded, admission queue full")

// errDraining reports an admission refusal because the server is
// shutting down (HTTP 503): retrying against this instance is pointless.
var errDraining = errors.New("server: draining, not accepting queries")

// admission is the bounded two-stage gate in front of execution:
//
//	enter  — counted admission; refuses instantly when draining or when
//	         MaxQueue requests are already waiting for a slot.
//	acquire — blocks for one of MaxConcurrent execution slots, giving up
//	         when the request's context dies first.
//
// The split matters for batching: a batch follower is admitted (enter)
// but never takes a slot — its leader's single slot covers the whole
// batch — so N coalesced queries consume one unit of execution
// concurrency, which is the point.
//
// The draining flag and the in-house count share one mutex with the
// WaitGroup's Add, closing the classic Add/Wait race: once beginDrain
// returns, no later enter can Add, so wait observes a monotonically
// draining house.
type admission struct {
	slots chan struct{}

	mu       sync.Mutex
	draining bool
	inHouse  int // admitted requests: waiting + executing
	maxHouse int // MaxQueue + MaxConcurrent
	wg       sync.WaitGroup
}

func (a *admission) init(maxConcurrent, maxQueue int) {
	a.slots = make(chan struct{}, maxConcurrent)
	a.maxHouse = maxConcurrent + maxQueue
}

// enter admits one request or refuses with errShed/errDraining. Every
// successful enter must be paired with exit.
func (a *admission) enter() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return errDraining
	}
	if a.inHouse >= a.maxHouse {
		return errShed
	}
	a.inHouse++
	a.wg.Add(1)
	return nil
}

// exit retires one admitted request.
func (a *admission) exit() {
	a.mu.Lock()
	a.inHouse--
	a.mu.Unlock()
	a.wg.Done()
}

// acquire blocks until an execution slot frees up or ctx dies. A nil
// return must be paired with release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees an execution slot.
func (a *admission) release() { <-a.slots }

// load reports how many admitted requests are in the house right now —
// the concurrency signal for the batching gate.
func (a *admission) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inHouse
}

func (a *admission) isDraining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// beginDrain stops admission. Idempotent; never blocks.
func (a *admission) beginDrain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// wait blocks until every admitted request has exited, or ctx dies
// first; it reports whether the house emptied. Callers must beginDrain
// first, otherwise new entries can keep the house occupied forever.
func (a *admission) wait(ctx context.Context) bool {
	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-ctx.Done():
		// The waiter goroutine still exits the moment the house empties:
		// wg.Wait returns and close(done) runs regardless of anyone
		// listening.
		return false
	}
}
