package server

import (
	"context"
	"errors"
	"net/http"

	"bpagg"
	"bpagg/internal/sqlmini"
)

// StatusClientClosedRequest is nginx's non-standard 499: the client went
// away before the answer existed. Distinct from 504 (the server's
// deadline fired) so operators can tell impatient clients from slow
// queries in status metrics.
const StatusClientClosedRequest = 499

// statusFor maps an execution error to its HTTP status and a stable
// machine-readable kind. The mapping is purely errors.Is/As-driven — no
// string sniffing — which is exactly what the error-contract table test
// in the root package pins: every engine error type survives wrapping.
//
//	nil                        → 200 ok
//	errShed                    → 429 shed        (Retry-After set)
//	errDraining                → 503 draining
//	*sqlmini.BadQueryError     → 400 bad_query
//	*bpagg.OverflowError       → 422 overflow    (query valid, answer unrepresentable)
//	bpagg.ErrGroupCardinality  → 422 cardinality
//	*bpagg.PanicError          → 500 panic       (worker died; process did not)
//	context.DeadlineExceeded   → 504 timeout
//	context.Canceled           → 503 draining    (if drain hard-cancel fired)
//	                           → 499 canceled    (client went away)
//	anything else              → 500 internal
func (s *Server) statusFor(err error) (int, string) {
	if err == nil {
		return http.StatusOK, "ok"
	}
	if errors.Is(err, errShed) {
		return http.StatusTooManyRequests, "shed"
	}
	if errors.Is(err, errDraining) {
		return http.StatusServiceUnavailable, "draining"
	}
	var bad *sqlmini.BadQueryError
	if errors.As(err, &bad) {
		return http.StatusBadRequest, "bad_query"
	}
	var of *bpagg.OverflowError
	if errors.As(err, &of) {
		return http.StatusUnprocessableEntity, "overflow"
	}
	if errors.Is(err, bpagg.ErrGroupCardinality) {
		return http.StatusUnprocessableEntity, "cardinality"
	}
	var pe *bpagg.PanicError
	if errors.As(err, &pe) {
		return http.StatusInternalServerError, "panic"
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, "timeout"
	}
	if errors.Is(err, context.Canceled) {
		if s.stopCtx.Err() != nil {
			return http.StatusServiceUnavailable, "draining"
		}
		return StatusClientClosedRequest, "canceled"
	}
	return http.StatusInternalServerError, "internal"
}
