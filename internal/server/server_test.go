package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bpagg/internal/catalog"
	"bpagg/internal/faultinject"
)

// testCatalog builds a small read-only sales table shared by all server
// tests (catalogs are immutable once loaded).
var testCatalog = sync.OnceValue(func() *catalog.Catalog {
	specs, err := catalog.ParseSchema("price:uint(12):vbp, qty:uint(8):hbp, region:string")
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	b.WriteString("price,qty,region\n")
	regions := []string{"EU", "US", "APAC"}
	for i := 0; i < 4096; i++ {
		fmt.Fprintf(&b, "%d,%d,%s\n", i%4000, i%250, regions[i%3])
	}
	cat, err := catalog.LoadCSV(strings.NewReader(b.String()), specs)
	if err != nil {
		panic(err)
	}
	return cat
})

// bigCatalog is large enough that every worker processes multiple
// 4096-segment blocks, so mid-scan cancellation checks actually fire.
var bigCatalog = sync.OnceValue(func() *catalog.Catalog {
	specs, err := catalog.ParseSchema("v:uint(8):vbp")
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	b.WriteString("v\n")
	for i := 0; i < 600_000; i++ {
		fmt.Fprintf(&b, "%d\n", i%251)
	}
	cat, err := catalog.LoadCSV(strings.NewReader(b.String()), specs)
	if err != nil {
		panic(err)
	}
	return cat
})

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = testCatalog()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, sql string) (int, Response, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/query", "text/plain", bytes.NewBufferString(sql))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var body Response
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, body, resp.Header
}

func TestQueryOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := post(t, ts.URL, "SELECT COUNT(*), SUM(qty) WHERE region = 'EU'")
	if code != http.StatusOK || body.Kind != "ok" {
		t.Fatalf("code=%d kind=%q err=%q", code, body.Kind, body.Error)
	}
	if len(body.Rows) != 1 || len(body.Rows[0]) != 2 {
		t.Fatalf("rows = %v", body.Rows)
	}
	if body.Stats.Scans == 0 || body.Stats.Aggregates == 0 {
		t.Errorf("response stats empty: %+v", body.Stats)
	}
}

// TestQueryRownum exercises the rownum range route end to end through
// the HTTP surface: the answer is index-served (the response stats carry
// the prefix-index counters), and rownum misuse maps to 400 like any
// other bad query.
func TestQueryRownum(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := post(t, ts.URL, "SELECT COUNT(*), SUM(qty) WHERE rownum BETWEEN 256 AND 511")
	if code != http.StatusOK || body.Kind != "ok" {
		t.Fatalf("code=%d kind=%q err=%q", code, body.Kind, body.Error)
	}
	if len(body.Rows) != 1 || body.Rows[0][0] != "256" {
		t.Fatalf("rows = %v", body.Rows)
	}
	if body.Stats.SegmentsIndexServed == 0 {
		t.Errorf("rownum answer not index-served: %+v", body.Stats)
	}
	if code, body, _ := post(t, ts.URL, "SELECT COUNT(*) WHERE rownum > 5"); code != http.StatusBadRequest || body.Kind != "bad_query" {
		t.Errorf("rownum > 5: code=%d kind=%q, want 400 bad_query", code, body.Kind)
	}
}

func TestBadQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, sql := range []string{
		"SELECT SUM(nope)",        // unknown column
		"SELECT SUM(region)",      // SUM over string
		"SELEKT COUNT(*)",         // parse failure
		"SELECT QUANTILE(qty, 2)", // quantile out of range
	} {
		code, body, _ := post(t, ts.URL, sql)
		if code != http.StatusBadRequest || body.Kind != "bad_query" {
			t.Errorf("%q: code=%d kind=%q, want 400 bad_query", sql, code, body.Kind)
		}
	}

	// Malformed timeout override is the client's fault too.
	resp, err := http.Post(ts.URL+"/query?timeout=banana", "text/plain",
		bytes.NewBufferString("SELECT COUNT(*)"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout: code=%d, want 400", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: code=%d, want 405", resp.StatusCode)
	}
}

func TestTimeoutOverride(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.SiteWorkerStart, func(...any) error {
		time.Sleep(80 * time.Millisecond)
		return nil
	})
	s, ts := newTestServer(t, Config{Catalog: bigCatalog(), DisableBatching: true})

	resp, err := http.Post(ts.URL+"/query?timeout=20ms", "text/plain",
		bytes.NewBufferString("SELECT SUM(v)"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body Response
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout || body.Kind != "timeout" {
		t.Fatalf("code=%d kind=%q err=%q, want 504 timeout", resp.StatusCode, body.Kind, body.Error)
	}
	if c := s.CountersSnapshot(); c.TimedOut != 1 {
		t.Errorf("TimedOut = %d, want 1", c.TimedOut)
	}
}

func TestOverflowMaps422(t *testing.T) {
	specs, err := catalog.ParseSchema("big:uint(64):vbp")
	if err != nil {
		t.Fatal(err)
	}
	csv := "big\n18446744073709551615\n18446744073709551615\n"
	cat, err := catalog.LoadCSV(strings.NewReader(csv), specs)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Catalog: cat})
	code, body, _ := post(t, ts.URL, "SELECT SUM(big)")
	if code != http.StatusUnprocessableEntity || body.Kind != "overflow" {
		t.Fatalf("code=%d kind=%q err=%q, want 422 overflow", code, body.Kind, body.Error)
	}
}

func TestPanicMaps500AndServerSurvives(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.SiteWorkerStart, func(...any) error {
		panic("injected worker fault")
	})
	s, ts := newTestServer(t, Config{DisableBatching: true})
	code, body, _ := post(t, ts.URL, "SELECT SUM(qty)")
	if code != http.StatusInternalServerError || body.Kind != "panic" {
		t.Fatalf("code=%d kind=%q err=%q, want 500 panic", code, body.Kind, body.Error)
	}
	if c := s.CountersSnapshot(); c.Panics != 1 {
		t.Errorf("Panics = %d, want 1", c.Panics)
	}

	// The process survives: the same server answers the next query.
	faultinject.Reset()
	code, body, _ = post(t, ts.URL, "SELECT SUM(qty)")
	if code != http.StatusOK {
		t.Fatalf("after panic: code=%d kind=%q, want 200", code, body.Kind)
	}
}

func TestShedUnderOverload(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.SiteWorkerStart, func(...any) error {
		time.Sleep(40 * time.Millisecond)
		return nil
	})
	s, ts := newTestServer(t, Config{
		MaxConcurrent:   1,
		MaxQueue:        1,
		DisableBatching: true,
	})

	const n = 10
	codes := make([]int, n)
	retry := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/query", "text/plain",
				bytes.NewBufferString("SELECT SUM(qty)"))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var body Response
			_ = json.NewDecoder(resp.Body).Decode(&body)
			codes[i] = resp.StatusCode
			retry[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retry[i] == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("ok=%d shed=%d; want both nonzero (admission bounded at 2 of %d)", ok, shed, n)
	}
	if c := s.CountersSnapshot(); c.Shed != uint64(shed) {
		t.Errorf("Shed counter = %d, responses = %d", c.Shed, shed)
	}
}

func TestDrainRefusesAndHealthzFlips(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	s.BeginDrain()
	code, body, _ := post(t, ts.URL, "SELECT COUNT(*)")
	if code != http.StatusServiceUnavailable || body.Kind != "draining" {
		t.Fatalf("code=%d kind=%q, want 503 draining", code, body.Kind)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("empty drain: %v", err)
	}
}

func TestDrainHardCancelsStuckQuery(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.SiteWorkerRange, func(...any) error {
		time.Sleep(100 * time.Millisecond)
		return nil
	})
	cfg := Config{
		Catalog:         bigCatalog(),
		DefaultTimeout:  10 * time.Second, // the drain, not the deadline, must kill it
		DrainTimeout:    50 * time.Millisecond,
		DisableBatching: true,
	}
	// Two workers over ~9400 segments gives every worker multiple
	// 4096-segment blocks, so the post-hard-cancel ctx check actually
	// runs mid-scan.
	cfg.Exec.Threads = 2
	s, ts := newTestServer(t, cfg)

	got := make(chan Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query", "text/plain",
			bytes.NewBufferString("SELECT SUM(v)"))
		if err != nil {
			got <- Response{}
			return
		}
		defer resp.Body.Close()
		var body Response
		_ = json.NewDecoder(resp.Body).Decode(&body)
		got <- body
	}()

	time.Sleep(20 * time.Millisecond) // let the query reach the engine
	if err := s.Drain(context.Background()); err == nil {
		t.Error("drain over a stuck query reported clean; want hard-cancel error")
	}

	select {
	case body := <-got:
		if body.Kind != "draining" {
			t.Errorf("stuck query answered kind=%q err=%q, want draining", body.Kind, body.Error)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hard-canceled query never answered")
	}
}

func TestBatchingAmortizes(t *testing.T) {
	const n = 8
	workload := func(t *testing.T, cfg Config) (*Server, []Response) {
		s, ts := newTestServer(t, cfg)
		out := make([]Response, n)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				code, body, _ := post(t, ts.URL, "SELECT SUM(qty), COUNT(*) WHERE region = 'EU'")
				if code != http.StatusOK {
					t.Errorf("client %d: code=%d err=%q", i, code, body.Error)
				}
				out[i] = body
			}(i)
		}
		close(start)
		wg.Wait()
		return s, out
	}

	sBatched, responses := workload(t, Config{
		MaxConcurrent:    4,
		MaxQueue:         2 * n,
		BatchMinInflight: 1,
		BatchWindow:      150 * time.Millisecond,
	})
	sSolo, _ := workload(t, Config{
		MaxConcurrent:   4,
		MaxQueue:        2 * n,
		DisableBatching: true,
	})

	maxBatch := 0
	for _, r := range responses {
		if r.Batch != nil && r.Batch.Size > maxBatch {
			maxBatch = r.Batch.Size
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no multi-query batch formed (max size %d)", maxBatch)
	}
	batched, solo := sBatched.Totals(), sSolo.Totals()
	if batched.WordsTouched >= solo.WordsTouched {
		t.Errorf("batched WordsTouched = %d, unbatched = %d; batching should amortize",
			batched.WordsTouched, solo.WordsTouched)
	}
	if batched.Scans >= solo.Scans {
		t.Errorf("batched Scans = %d, unbatched = %d", batched.Scans, solo.Scans)
	}
	if c := sBatched.CountersSnapshot(); c.Batched < 2 || c.Batches == 0 {
		t.Errorf("counters = %+v; want Batched>=2, Batches>=1", c)
	}
}

func TestBatchingDisabledUnderLowConcurrency(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchMinInflight: 4})
	code, body, _ := post(t, ts.URL, "SELECT SUM(qty) WHERE region = 'EU'")
	if code != http.StatusOK {
		t.Fatalf("code=%d err=%q", code, body.Error)
	}
	if body.Batch != nil {
		t.Errorf("lone query batched: %+v; batching must stay off below BatchMinInflight", body.Batch)
	}
	if c := s.CountersSnapshot(); c.Batches != 0 {
		t.Errorf("Batches = %d, want 0", c.Batches)
	}
}

func TestStatz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL, "SELECT SUM(qty)")
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statz struct {
		Totals   map[string]any `json:"totals"`
		Counters Counters       `json:"counters"`
		Draining bool           `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if statz.Counters.Admitted != 1 || statz.Counters.Answered != 1 {
		t.Errorf("counters = %+v", statz.Counters)
	}
	if statz.Draining {
		t.Error("fresh server reports draining")
	}
}
