package server

import (
	"context"
	"sync/atomic"
	"time"

	"bpagg"
	"bpagg/internal/sqlmini"
)

// Shared-scan batching: concurrent admitted queries whose WHERE clauses
// bind to the same predicate conjunction (sqlmini.BatchKey) coalesce
// into one ExecuteShared call — one selection scan and one kernel
// invocation per distinct aggregate answer the whole batch, the
// cross-query analogue of the paper's multiple-aggregates-per-pass
// amortization.
//
// Protocol: the first query of a class becomes the leader. It opens the
// class, waits BatchWindow for followers (or until the batch is full),
// atomically closes the class, takes ONE execution slot, and runs the
// shared plan. Followers enqueue and wait on a buffered outcome channel,
// so a follower whose client vanishes costs nothing: the leader's send
// never blocks, the channel is garbage.
//
// Cancellation is collective: the shared execution context dies only
// when every member's request context has died (one impatient client
// must not starve the rest) or when a drain hard-cancel fires. A leader
// whose own context dies mid-protocol hands nothing off — it still runs
// the batch for its followers; its own reply just reports its context
// error if execution was cut short.

// outcome is one member's share of a finished batch.
type outcome struct {
	res   *sqlmini.Result
	err   error
	stats bpagg.ExecStats
	size  int
}

// member is one query waiting inside an open class.
type member struct {
	q   *sqlmini.Query
	ctx context.Context
	out chan outcome // buffered(1); exactly one send, ever
}

// class is one forming batch. Its lifecycle is open → closed; members
// only join while open, and only the leader closes it.
type class struct {
	key     string
	members []*member
	full    chan struct{} // closed when len(members) reaches MaxBatch
}

type batcher struct {
	s *Server

	mu      chan struct{} // 1-token mutex; see lock/unlock
	classes map[string]*class
}

func newBatcher(s *Server) *batcher {
	b := &batcher{
		s:       s,
		mu:      make(chan struct{}, 1),
		classes: map[string]*class{},
	}
	b.mu <- struct{}{}
	return b
}

func (b *batcher) lock()   { <-b.mu }
func (b *batcher) unlock() { b.mu <- struct{}{} }

// run coalesces q into its class's batch and blocks until the batch is
// executed or ctx dies. joined is always true: once here, the query is
// answered through the batch protocol (possibly as a batch of one).
func (b *batcher) run(ctx context.Context, key string, q *sqlmini.Query) (outcome, bool) {
	m := &member{q: q, ctx: ctx, out: make(chan outcome, 1)}

	b.lock()
	c := b.classes[key]
	if c != nil {
		// Follower: join the open class and wait for the leader.
		c.members = append(c.members, m)
		if len(c.members) >= b.s.cfg.MaxBatch {
			delete(b.classes, key) // close early: the class is full
			close(c.full)
		}
		b.unlock()
		select {
		case o := <-m.out:
			return o, true
		case <-ctx.Done():
			return outcome{err: ctx.Err()}, true
		}
	}

	// Leader: open the class, collect followers for one window.
	c = &class{key: key, members: []*member{m}, full: make(chan struct{})}
	b.classes[key] = c
	b.unlock()

	timer := time.NewTimer(b.s.cfg.BatchWindow)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-c.full:
	case <-ctx.Done():
		// Leader's client gave up during the window. Close the class and
		// execute anyway — followers may have joined and they are owed an
		// answer; the collective-cancel rule keeps the engine running for
		// them.
	}

	b.lock()
	if b.classes[key] == c {
		delete(b.classes, key)
	}
	b.unlock()
	// From here c.members is immutable: joining requires the class to be
	// in the map, and it no longer is.

	b.execute(c)
	o := <-m.out
	return o, true
}

// execute runs a closed class as one shared plan and distributes the
// per-member results.
func (b *batcher) execute(c *class) {
	n := len(c.members)

	// The shared context dies when ALL members' contexts have — tracked
	// with a countdown — or when a drain hard-cancel fires.
	execCtx, cancel := context.WithCancel(b.s.stopCtx)
	defer cancel()
	live := int64(n)
	stops := make([]func() bool, 0, n)
	for _, m := range c.members {
		stops = append(stops, context.AfterFunc(m.ctx, func() {
			if atomic.AddInt64(&live, -1) == 0 {
				cancel()
			}
		}))
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	// One execution slot covers the whole batch — that is the amortization
	// the admission layer sees. Slot waiting is bounded by the collective
	// context, so a drained or fully-abandoned batch cannot camp on the
	// queue.
	if err := b.s.adm.acquire(execCtx); err != nil {
		b.fail(c, err)
		return
	}
	defer b.s.adm.release()

	rec := bpagg.NewStatsCollector()
	o := b.s.cfg.Exec
	o.Stats = rec
	qs := make([]*sqlmini.Query, n)
	for i, m := range c.members {
		qs[i] = m.q
	}
	results := sqlmini.ExecuteShared(execCtx, b.s.cfg.Catalog, qs, o)
	stats := rec.Snapshot()
	b.s.totals.Record(stats)
	b.s.batchRun.Add(1)
	b.s.batchHit.Add(uint64(n))

	for i, m := range c.members {
		m.out <- outcome{res: results[i].Res, err: results[i].Err, stats: stats, size: n}
	}
}

// fail answers every member with err (stats zero: nothing ran).
func (b *batcher) fail(c *class, err error) {
	for _, m := range c.members {
		m.out <- outcome{err: err, size: len(c.members)}
	}
}
