// Package server implements bpaggd's HTTP query-serving layer: a
// robustness envelope — admission control, per-query deadlines, overload
// shedding, graceful drain — wrapped around the sqlmini ...Context
// execution paths, with shared-scan batching amortizing concurrent
// same-class queries into one traversal (DESIGN.md §13).
//
// The design goal is predictable degradation: under overload the server
// sheds fast (429 + Retry-After) instead of queuing unboundedly; under
// slow queries deadlines fire and return 504 with partial ExecStats;
// under worker panics the request gets a 500 and the process lives on;
// under SIGTERM in-flight queries drain up to a deadline, then are
// hard-canceled. Every admitted request is answered exactly once.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"bpagg"
	"bpagg/internal/catalog"
	"bpagg/internal/sqlmini"
)

// Config parameterizes a Server. The zero value of every field gets a
// sane default from withDefaults, so tests and callers set only what
// they care about.
type Config struct {
	// Catalog is the loaded table every query runs against. Required.
	Catalog *catalog.Catalog

	// Exec carries engine knobs (threads, wide words, auto access).
	// Exec.Stats is ignored: the server wires a per-request collector.
	Exec sqlmini.ExecOptions

	// MaxConcurrent bounds queries executing simultaneously.
	// Default: GOMAXPROCS.
	MaxConcurrent int

	// MaxQueue bounds queries admitted but waiting for an execution
	// slot. Beyond it the server sheds with 429. Default: 4×MaxConcurrent.
	MaxQueue int

	// DefaultTimeout is the per-query deadline when the request does not
	// override it. Default: 2s.
	DefaultTimeout time.Duration

	// MaxTimeout caps per-request ?timeout= overrides. Default: 30s.
	MaxTimeout time.Duration

	// DrainTimeout bounds how long Drain waits for in-flight queries
	// before hard-canceling them. Default: 5s.
	DrainTimeout time.Duration

	// BatchWindow is how long a shared-scan batch leader waits for
	// same-class followers before executing. Default: 2ms.
	BatchWindow time.Duration

	// BatchMinInflight disables batching while fewer queries than this
	// are in the house (admitted, waiting or executing): under low
	// concurrency the window is pure added latency with nobody to share
	// with. Default: 4.
	BatchMinInflight int

	// MaxBatch caps a batch's size; a full batch fires before its window
	// expires. Default: 64.
	MaxBatch int

	// DisableBatching turns shared-scan batching off entirely
	// (benchmark A/B switch).
	DisableBatching bool
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMinInflight <= 0 {
		c.BatchMinInflight = 4
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// Counters are the server's cumulative request-outcome counts, exposed
// on /statz and snapshotted by tests and benchmarks.
type Counters struct {
	Admitted uint64 `json:"admitted"`
	Answered uint64 `json:"answered"`
	Shed     uint64 `json:"shed"`
	Rejected uint64 `json:"rejected"` // draining refusals
	TimedOut uint64 `json:"timed_out"`
	Canceled uint64 `json:"canceled"`
	Panics   uint64 `json:"panics"`
	Batches  uint64 `json:"batches"` // shared-scan batches executed
	Batched  uint64 `json:"batched"` // queries answered from a shared batch
}

// BatchInfo annotates a response that was answered from a shared-scan
// batch: Size queries of class Key shared one traversal.
type BatchInfo struct {
	Size int    `json:"size"`
	Key  string `json:"key"`
}

// Response is the JSON body of every /query answer — success or failure.
// Stats is always present (zero for shed requests, partial for timed-out
// ones) so clients can meter engine work per request unconditionally.
type Response struct {
	Headers   []string        `json:"headers,omitempty"`
	Rows      [][]string      `json:"rows,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Stats     bpagg.ExecStats `json:"stats"`
	Batch     *BatchInfo      `json:"batch,omitempty"`
	Code      int             `json:"code"`
	Error     string          `json:"error,omitempty"`
	Kind      string          `json:"kind,omitempty"`
}

// Server executes sqlmini queries over HTTP. Construct with New, mount
// Handler, and call Drain on shutdown.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	totals *bpagg.StatsCollector

	// stopCtx is canceled exactly once, by hardCancel, when a drain
	// deadline expires: every in-flight request context is wired to it.
	stopCtx    context.Context
	hardCancel context.CancelFunc

	adm     admission
	batches *batcher

	admitted atomic.Uint64
	answered atomic.Uint64
	shed     atomic.Uint64
	rejected atomic.Uint64
	timedOut atomic.Uint64
	canceled atomic.Uint64
	panics   atomic.Uint64
	batchRun atomic.Uint64
	batchHit atomic.Uint64
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Catalog == nil {
		return nil, errors.New("server: Config.Catalog is required")
	}
	cfg.Exec.Stats = nil
	s := &Server{
		cfg:    cfg,
		totals: bpagg.NewStatsCollector(),
	}
	s.stopCtx, s.hardCancel = context.WithCancel(context.Background())
	s.adm.init(cfg.MaxConcurrent, cfg.MaxQueue)
	s.batches = newBatcher(s)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	return s, nil
}

// Handler returns the http.Handler serving /query, /healthz and /statz.
func (s *Server) Handler() http.Handler { return s.mux }

// Totals returns the cumulative engine ExecStats across all queries
// (shared batches charged once, however many queries they answered).
func (s *Server) Totals() bpagg.ExecStats { return s.totals.Snapshot() }

// CountersSnapshot returns the cumulative request-outcome counters.
func (s *Server) CountersSnapshot() Counters {
	return Counters{
		Admitted: s.admitted.Load(),
		Answered: s.answered.Load(),
		Shed:     s.shed.Load(),
		Rejected: s.rejected.Load(),
		TimedOut: s.timedOut.Load(),
		Canceled: s.canceled.Load(),
		Panics:   s.panics.Load(),
		Batches:  s.batchRun.Load(),
		Batched:  s.batchHit.Load(),
	}
}

// timeoutFor resolves the request's deadline: the server default, or a
// ?timeout= override clamped to [1ms, MaxTimeout]. A malformed override
// is a bad request.
func (s *Server) timeoutFor(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, &sqlmini.BadQueryError{Msg: fmt.Sprintf("server: bad timeout %q: %v", raw, err)}
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// handleQuery is the request path: read SQL, admit, execute (shared or
// solo), answer. Every branch funnels through writeResponse exactly once.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeResponse(w, start, nil, nil, bpagg.ExecStats{},
			&sqlmini.BadQueryError{Msg: "server: POST a query"}, http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.writeResponse(w, start, nil, nil, bpagg.ExecStats{},
			fmt.Errorf("server: reading body: %w", err), 0)
		return
	}
	timeout, err := s.timeoutFor(r)
	if err != nil {
		s.writeResponse(w, start, nil, nil, bpagg.ExecStats{}, err, 0)
		return
	}
	q, err := sqlmini.Parse(string(body))
	if err != nil {
		s.writeResponse(w, start, nil, nil, bpagg.ExecStats{}, err, 0)
		return
	}

	// Admission: reject instantly while draining or when the wait queue
	// is full — never block the client on a queue that cannot drain
	// faster than it fills.
	if err := s.adm.enter(); err != nil {
		if errors.Is(err, errShed) {
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
		} else {
			s.rejected.Add(1)
		}
		s.writeResponse(w, start, nil, nil, bpagg.ExecStats{}, err, 0)
		return
	}
	defer s.adm.exit()
	s.admitted.Add(1)

	// The request context carries the deadline and is additionally
	// canceled by a drain hard-cancel — so a stuck client or a stuck
	// query cannot outlive the drain window.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stop := context.AfterFunc(s.stopCtx, cancel)
	defer stop()

	res, stats, batch, err := s.execute(ctx, q)
	s.countOutcome(ctx, err)
	s.writeResponse(w, start, res, batch, stats, err, 0)
}

// execute runs one admitted query: through a shared-scan batch when the
// class and concurrency gates open, solo through ExecuteContext
// otherwise.
func (s *Server) execute(ctx context.Context, q *sqlmini.Query) (*sqlmini.Result, bpagg.ExecStats, *BatchInfo, error) {
	if key, ok := s.batchEligible(q); ok {
		if out, joined := s.batches.run(ctx, key, q); joined {
			return out.res, out.stats, &BatchInfo{Size: out.size, Key: key}, out.err
		}
	}

	if err := s.adm.acquire(ctx); err != nil {
		return nil, bpagg.ExecStats{}, nil, err
	}
	defer s.adm.release()

	rec := bpagg.NewStatsCollector()
	o := s.cfg.Exec
	o.Stats = rec
	res, err := sqlmini.ExecuteContext(ctx, s.cfg.Catalog, q, o)
	stats := rec.Snapshot()
	s.totals.Record(stats)
	return res, stats, nil, err
}

// batchEligible applies the batching gate: feature on, query in a
// shareable class, and enough concurrent company to share with.
func (s *Server) batchEligible(q *sqlmini.Query) (string, bool) {
	if s.cfg.DisableBatching {
		return "", false
	}
	key, ok := sqlmini.BatchKey(s.cfg.Catalog, q)
	if !ok {
		return "", false
	}
	if s.adm.load() < s.cfg.BatchMinInflight {
		return "", false
	}
	return key, true
}

// countOutcome classifies one finished request into the counters.
func (s *Server) countOutcome(ctx context.Context, err error) {
	switch {
	case err == nil:
		s.answered.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		s.timedOut.Add(1)
	case errors.Is(err, context.Canceled):
		s.canceled.Add(1)
	default:
		var pe *bpagg.PanicError
		if errors.As(err, &pe) {
			s.panics.Add(1)
		}
		s.answered.Add(1)
	}
}

// writeResponse renders the single JSON answer for a request. forceCode
// overrides status mapping when non-zero (method-not-allowed).
func (s *Server) writeResponse(w http.ResponseWriter, start time.Time, res *sqlmini.Result, batch *BatchInfo, stats bpagg.ExecStats, err error, forceCode int) {
	code, kind := s.statusFor(err)
	if forceCode != 0 {
		code = forceCode
	}
	resp := Response{
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Stats:     stats,
		Batch:     batch,
		Code:      code,
		Kind:      kind,
	}
	if err != nil {
		resp.Error = err.Error()
	} else if res != nil {
		resp.Headers = res.Headers
		resp.Rows = res.Rows
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(resp) // client gone is not a server error
}

// handleHealthz answers 200 while accepting queries and 503 once
// draining, so load balancers stop routing before shutdown completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.adm.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleStatz publishes cumulative engine totals and request counters.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Totals   bpagg.ExecStats `json:"totals"`
		Counters Counters        `json:"counters"`
		Draining bool            `json:"draining"`
	}{s.Totals(), s.CountersSnapshot(), s.adm.isDraining()})
}

// BeginDrain atomically stops admission; already-admitted queries keep
// running. Idempotent.
func (s *Server) BeginDrain() { s.adm.beginDrain() }

// Drain gracefully shuts the query path down: stop admitting, wait up to
// DrainTimeout (or ctx, whichever is sooner) for in-flight queries, then
// hard-cancel the stragglers and wait for them to unwind. On return no
// request is in flight and none can be admitted; the reported error is
// non-nil iff the hard cancel was needed.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	if s.adm.wait(ctx) {
		return nil
	}
	s.hardCancel()
	// Canceled queries unwind promptly: every engine worker observes ctx
	// between segment blocks and is joined before its aggregate returns.
	s.adm.wait(context.Background())
	return fmt.Errorf("server: drain deadline exceeded; %w", context.DeadlineExceeded)
}
