package bpagg

import (
	"context"
	"fmt"
	"time"
)

// Error-returning and context-aware query layer: the hardened twins of
// the chaining Query/Grouped API. Unknown column names — the one
// untrusted input this layer sees — come back as errors instead of
// panics, and every aggregate accepts a context.

// ColumnErr returns the named column or an error when absent — the
// error-returning twin of Column for callers resolving untrusted names.
func (t *Table) ColumnErr(name string) (*Column, error) {
	c := t.cols[name]
	if c == nil {
		return nil, fmt.Errorf("bpagg: unknown column %q", name)
	}
	return c, nil
}

// WhereErr is the error-returning twin of Where: an unknown column name
// or an oversized predicate constant returns an error instead of
// panicking. On success it returns the query for chaining. The clause is
// recorded lazily exactly like Where's, so it participates in fusion and
// its eventual scan is visible to the query's stats collector.
func (q *Query) WhereErr(column string, p Predicate) (*Query, error) {
	col, err := q.t.ColumnErr(column)
	if err != nil {
		return nil, err
	}
	if !p.fits(col.k) {
		return nil, fmt.Errorf("bpagg: predicate constant does not fit in %d bits", col.k)
	}
	q.clauses = append(q.clauses, whereClause{name: column, col: col, pred: p})
	return q, nil
}

// colErr resolves an aggregate target column to an error, not a panic.
func (q *Query) colErr(name string) (*Column, error) {
	return q.t.ColumnErr(name)
}

// CountRowsContext counts the rows passing the filter (COUNT(*)),
// honoring ctx — fused when the clauses allow it, a bitmap popcount
// otherwise.
func (q *Query) CountRowsContext(ctx context.Context) (uint64, error) {
	if preds, o, ok := q.fusedPlan(nil); ok {
		return q.fusedCount(orBackground(ctx), preds, o)
	}
	if err := orBackground(ctx).Err(); err != nil {
		return 0, err
	}
	return uint64(q.Selection().Count()), nil
}

// CountContext counts selected non-NULL rows of the named column.
func (q *Query) CountContext(ctx context.Context, column string) (uint64, error) {
	col, err := q.colErr(column)
	if err != nil {
		return 0, err
	}
	if preds, o, ok := q.fusedPlan(col); ok {
		return q.fusedCount(orBackground(ctx), preds, o)
	}
	return col.CountContext(ctx, q.Selection())
}

// SumContext aggregates SUM over the named column, honoring ctx.
func (q *Query) SumContext(ctx context.Context, column string) (uint64, error) {
	col, err := q.colErr(column)
	if err != nil {
		return 0, err
	}
	if preds, o, ok := q.fusedPlan(col); ok {
		sum, _, err := col.fusedSum(orBackground(ctx), preds, o)
		return sum, err
	}
	return col.SumContext(ctx, q.Selection(), q.execs...)
}

// MinContext aggregates MIN over the named column, honoring ctx.
func (q *Query) MinContext(ctx context.Context, column string) (uint64, bool, error) {
	return q.extremeContext(ctx, column, true)
}

// MaxContext aggregates MAX over the named column, honoring ctx.
func (q *Query) MaxContext(ctx context.Context, column string) (uint64, bool, error) {
	return q.extremeContext(ctx, column, false)
}

func (q *Query) extremeContext(ctx context.Context, column string, wantMin bool) (uint64, bool, error) {
	col, err := q.colErr(column)
	if err != nil {
		return 0, false, err
	}
	if preds, o, ok := q.fusedPlan(col); ok {
		v, cnt, err := col.fusedExtreme(orBackground(ctx), preds, o, wantMin)
		return v, cnt > 0, err
	}
	if wantMin {
		return col.MinContext(ctx, q.Selection(), q.execs...)
	}
	return col.MaxContext(ctx, q.Selection(), q.execs...)
}

// AvgContext aggregates AVG over the named column, honoring ctx.
func (q *Query) AvgContext(ctx context.Context, column string) (float64, bool, error) {
	col, err := q.colErr(column)
	if err != nil {
		return 0, false, err
	}
	if preds, o, ok := q.fusedPlan(col); ok {
		sum, cnt, err := col.fusedSum(orBackground(ctx), preds, o)
		if err != nil || cnt == 0 {
			return 0, false, err
		}
		return float64(sum) / float64(cnt), true, nil
	}
	return col.AvgContext(ctx, q.Selection(), q.execs...)
}

// MedianContext aggregates the lower MEDIAN over the named column,
// honoring ctx.
func (q *Query) MedianContext(ctx context.Context, column string) (uint64, bool, error) {
	col, err := q.colErr(column)
	if err != nil {
		return 0, false, err
	}
	if preds, o, ok := q.fusedPlan(col); ok {
		v, _, found, err := col.fusedRank(orBackground(ctx), preds, o, medianRank)
		return v, found, err
	}
	return col.MedianContext(ctx, q.Selection(), q.execs...)
}

// RankContext returns the r-th smallest selected value of the named
// column, honoring ctx.
func (q *Query) RankContext(ctx context.Context, column string, r uint64) (uint64, bool, error) {
	col, err := q.colErr(column)
	if err != nil {
		return 0, false, err
	}
	if preds, o, ok := q.fusedPlan(col); ok {
		v, _, found, err := col.fusedRank(orBackground(ctx), preds, o,
			func(uint64) (uint64, bool) { return r, true })
		return v, found, err
	}
	return col.RankContext(ctx, q.Selection(), r, q.execs...)
}

// QuantileContext returns the quantile-q value of the named column,
// honoring ctx; out-of-range q is an error, not a panic.
func (q *Query) QuantileContext(ctx context.Context, column string, quantile float64) (uint64, bool, error) {
	col, err := q.colErr(column)
	if err != nil {
		return 0, false, err
	}
	if quantile < 0 || quantile > 1 || quantile != quantile {
		return 0, false, fmt.Errorf("bpagg: quantile %v outside [0,1]", quantile)
	}
	if preds, o, ok := q.fusedPlan(col); ok {
		v, _, found, err := col.fusedRank(orBackground(ctx), preds, o, quantileRank(quantile))
		return v, found, err
	}
	return col.QuantileContext(ctx, q.Selection(), quantile, q.execs...)
}

// GroupByContext partitions the query's selection by the named columns'
// distinct values, honoring ctx. Qualifying queries run the single-pass
// partition (see GroupBy); otherwise the legacy walk runs, where each
// step is one MIN plus one equality scan (the strictly-greater residual
// is derived from the equality bitmap), so a canceled context stops the
// walk after the current group. Either path records into the query's
// stats collector.
func (q *Query) GroupByContext(ctx context.Context, columns ...string) (*Grouped, error) {
	ctx = orBackground(ctx)
	cols := make([]*Column, len(columns))
	for i, column := range columns {
		col, err := q.t.ColumnErr(column)
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}
	return q.groupByCols(ctx, cols)
}

// CountContext returns each group's row count, honoring ctx between
// groups. Like Count, the counts record into the query's stats
// collector as one aggregate per group.
func (g *Grouped) CountContext(ctx context.Context) ([]uint64, error) {
	ctx = orBackground(ctx)
	start := time.Now()
	out := make([]uint64, len(g.keys))
	for i := range g.keys {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = g.groupCount(i)
	}
	g.q.stats.Record(ExecStats{
		Aggregates: uint64(len(g.keys)),
		AggNanos:   time.Since(start).Nanoseconds(),
	})
	return out, nil
}

// SumContext aggregates SUM of the named column per group, honoring
// ctx. A group whose sum exceeds uint64 returns an *OverflowError
// carrying the exact 128-bit total and the offending group's key.
func (g *Grouped) SumContext(ctx context.Context, column string) ([]uint64, error) {
	col, err := g.q.colErr(column)
	if err != nil {
		return nil, err
	}
	if o, ok := g.banked(col); ok {
		return g.bankedSum(orBackground(ctx), col, o)
	}
	out := make([]uint64, len(g.keys))
	for i := range g.keys {
		v, err := col.SumContext(ctx, g.Selection(i), g.q.execs...)
		if err != nil {
			return nil, g.decorateOverflow(err, i)
		}
		out[i] = v
	}
	return out, nil
}

// MinContext aggregates MIN of the named column per group, honoring
// ctx. Groups are non-empty by construction, so no ok flags are needed.
func (g *Grouped) MinContext(ctx context.Context, column string) ([]uint64, error) {
	return g.extremeContext(ctx, column, true)
}

// MaxContext aggregates MAX of the named column per group, honoring
// ctx.
func (g *Grouped) MaxContext(ctx context.Context, column string) ([]uint64, error) {
	return g.extremeContext(ctx, column, false)
}

func (g *Grouped) extremeContext(ctx context.Context, column string, wantMin bool) ([]uint64, error) {
	col, err := g.q.colErr(column)
	if err != nil {
		return nil, err
	}
	if o, ok := g.banked(col); ok {
		vals, anys, err := g.bankedExtreme(orBackground(ctx), col, o, wantMin)
		if err != nil {
			return nil, err
		}
		for _, any := range anys {
			if !any {
				return nil, fmt.Errorf("bpagg: empty group selection — grouping invariant violated")
			}
		}
		return vals, nil
	}
	if wantMin {
		return g.eachContext(ctx, column, (*Column).MinContext)
	}
	return g.eachContext(ctx, column, (*Column).MaxContext)
}

// MedianContext aggregates the lower MEDIAN of the named column per
// group, honoring ctx.
func (g *Grouped) MedianContext(ctx context.Context, column string) ([]uint64, error) {
	return g.eachContext(ctx, column, (*Column).MedianContext)
}

// AvgContext aggregates AVG of the named column per group, honoring
// ctx. A group whose running sum exceeds uint64 returns an
// *OverflowError carrying the exact 128-bit total.
func (g *Grouped) AvgContext(ctx context.Context, column string) ([]float64, error) {
	col, err := g.q.colErr(column)
	if err != nil {
		return nil, err
	}
	if o, ok := g.banked(col); ok {
		return g.bankedAvg(orBackground(ctx), col, o)
	}
	out := make([]float64, len(g.keys))
	for i := range g.keys {
		v, _, err := col.AvgContext(ctx, g.Selection(i), g.q.execs...)
		if err != nil {
			return nil, g.decorateOverflow(err, i)
		}
		out[i] = v
	}
	return out, nil
}

func (g *Grouped) eachContext(ctx context.Context, column string,
	agg func(*Column, context.Context, *Bitmap, ...ExecOption) (uint64, bool, error)) ([]uint64, error) {
	col, err := g.q.colErr(column)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(g.keys))
	for i := range g.keys {
		v, ok, err := agg(col, ctx, g.Selection(i), g.q.execs...)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("bpagg: empty group selection — grouping invariant violated")
		}
		out[i] = v
	}
	return out, nil
}
