package bpagg

import "testing"

// Exercise the small accessors the bigger scenario tests route around.
func TestAccessorSurface(t *testing.T) {
	m := NewBitmap(10)
	if m.Len() != 10 {
		t.Errorf("Bitmap.Len = %d", m.Len())
	}
	m.Set(3)
	m.Clear(3)
	if m.Get(3) {
		t.Error("Clear failed")
	}

	cols := []*Column{FromValues(VBP, 8, []uint64{1, 2}), FromValues(VBP, 8, []uint64{3, 4})}
	tbl := NewTableFromColumns([]string{"a", "b"}, cols)
	if tbl.Rows() != 2 || tbl.Query().Sum("b") != 7 {
		t.Error("NewTableFromColumns wrong")
	}
	func() {
		defer func() { recover() }()
		NewTableFromColumns([]string{"x"}, nil)
		t.Error("mismatched names/cols did not panic")
	}()
	func() {
		defer func() { recover() }()
		NewTableFromColumns([]string{"a", "a"}, cols)
		t.Error("duplicate name did not panic")
	}()
	func() {
		defer func() { recover() }()
		NewTableFromColumns([]string{"a", "b"},
			[]*Column{FromValues(VBP, 8, []uint64{1}), FromValues(VBP, 8, []uint64{1, 2})})
		t.Error("ragged columns did not panic")
	}()

	d := NewDecimalColumn(HBP, Decimal{Scale: 1, Max: 10})
	d.Append(1.5)
	d.AppendNull()
	if d.Raw().Len() != 2 || d.Len() != 2 {
		t.Error("DecimalColumn accessors wrong")
	}
	if got, ok := d.Min(d.All()); !ok || got != 1.5 {
		t.Errorf("DecimalColumn.Min = %v", got)
	}

	s := NewSignedColumn(VBP, Signed{Min: -5, Max: 5})
	s.Append(-3)
	s.AppendNull()
	if s.Raw().NullCount() != 1 || s.Len() != 2 {
		t.Error("SignedColumn accessors wrong")
	}

	sc := NewStringColumn(VBP, []string{"a", "b"})
	sc.Append("b")
	if sc.Raw().Len() != 1 || sc.Len() != 1 || sc.Dict().Len() != 2 {
		t.Error("StringColumn accessors wrong")
	}

	col := NewColumn(VBP, 8)
	col.Append(1)
	if col.IsNull(0) || col.NullCount() != 0 {
		t.Error("null accessors on null-free column wrong")
	}
	func() {
		defer func() { recover() }()
		col.IsNull(5)
		t.Error("IsNull out of range did not panic")
	}()
}
