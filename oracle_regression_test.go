package bpagg_test

import (
	"errors"
	"math"
	"testing"

	"bpagg"
)

// This file pins the bugs flushed out by the differential oracle
// (TestOracleDifferentialSweep). Before the 128-bit checked SUM kernels
// landed, every test in the overflow family failed: the engine returned
// a silently wrapped uint64 on all paths — two-phase, fused,
// cache-served segments, reconstruct, GROUP BY — for both layouts.

const max64 = ^uint64(0)

// wantOverflowPanic runs fn and asserts it panics with *bpagg.OverflowError
// carrying the exact 128-bit total (hi, lo).
func wantOverflowPanic(t *testing.T, hi, lo uint64, fn func()) {
	t.Helper()
	defer func() {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatal("no panic; want *bpagg.OverflowError")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panicked with %T %v; want *bpagg.OverflowError", r, r)
		}
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			t.Fatalf("panicked with %v; want *bpagg.OverflowError", err)
		}
		if ov.Hi != hi || ov.Lo != lo {
			t.Fatalf("overflow reports (hi=%d, lo=%d); want (hi=%d, lo=%d)", ov.Hi, ov.Lo, hi, lo)
		}
	}()
	fn()
}

// TestRegressionSumOverflowTwoPhase: SUM over values wrapping uint64 via
// the two-phase scan-then-aggregate path must panic with the exact total,
// not return the wrapped value (pre-fix: returned 0 for a 2^64 total).
func TestRegressionSumOverflowTwoPhase(t *testing.T) {
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		for _, threads := range []int{1, 8} {
			col := bpagg.FromValues(layout, 64, []uint64{max64, 1})
			sel := col.Scan(bpagg.GreaterEq(0))
			// true sum = 2^64 exactly: hi=1, lo=0
			wantOverflowPanic(t, 1, 0, func() { col.Sum(sel, bpagg.Parallel(threads)) })
		}
	}
}

// TestRegressionSumOverflowContextError: the Context API reports the same
// overflow as an error instead of a panic.
func TestRegressionSumOverflowContextError(t *testing.T) {
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		col := bpagg.FromValues(layout, 64, []uint64{max64, 1})
		sel := col.Scan(bpagg.GreaterEq(0))
		_, err := col.SumContext(nil, sel)
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			t.Fatalf("%s: SumContext err = %v; want *bpagg.OverflowError", layout, err)
		}
		if ov.Hi != 1 || ov.Lo != 0 {
			t.Fatalf("%s: got (hi=%d, lo=%d), want (1, 0)", layout, ov.Hi, ov.Lo)
		}
		if _, _, err := col.AvgContext(nil, sel); !errors.As(err, &ov) {
			t.Fatalf("%s: AvgContext err = %v; want *bpagg.OverflowError", layout, err)
		}
	}
}

// TestRegressionSumOverflowFusedQuery: the fused scan→aggregate path
// (simple comparison, no materialized selection) over a wrapping column.
// 65 max values exercise one full segment plus a partial tail.
func TestRegressionSumOverflowFusedQuery(t *testing.T) {
	vals := make([]uint64, 65)
	for i := range vals {
		vals[i] = max64
	}
	// true sum = 65·(2^64−1) = 65·2^64 − 65: hi=64, lo=2^64−65
	wantHi, wantLo := uint64(64), max64-64
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		tbl := bpagg.NewTable()
		tbl.AddColumn("a", layout, 64)
		tbl.AppendColumnar(map[string][]uint64{"a": vals})
		q := tbl.Query().Where("a", bpagg.GreaterEq(0))
		if !q.Fused("a") {
			t.Fatalf("%s: query unexpectedly not fused", layout)
		}
		wantOverflowPanic(t, wantHi, wantLo, func() { tbl.Query().Where("a", bpagg.GreaterEq(0)).Sum("a") })
		_, _, err := tbl.Query().Where("a", bpagg.GreaterEq(0)).SumCountContext(nil, "a")
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			t.Fatalf("%s: SumCountContext err = %v; want *bpagg.OverflowError", layout, err)
		}
	}
}

// TestRegressionSumOverflowCacheServedSegment: an exactly-full segment
// under an all-match predicate is answered from the per-segment sum
// cache, whose uint64 entry has itself wrapped for k > 58 — the checked
// kernels must recompute instead of trusting it.
func TestRegressionSumOverflowCacheServedSegment(t *testing.T) {
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = max64
	}
	// true sum = 64·(2^64−1): hi=63, lo=2^64−64
	wantHi, wantLo := uint64(63), max64-63
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		tbl := bpagg.NewTable()
		tbl.AddColumn("a", layout, 64)
		tbl.AppendColumnar(map[string][]uint64{"a": vals})
		wantOverflowPanic(t, wantHi, wantLo, func() {
			tbl.Query().Where("a", bpagg.LessEq(max64)).Sum("a")
		})
	}
}

// TestRegressionSumOverflowReconstruct: the NBP reconstruction baseline
// must detect overflow too (pre-fix it summed into a plain uint64).
func TestRegressionSumOverflowReconstruct(t *testing.T) {
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		col := bpagg.FromValues(layout, 64, []uint64{max64, 1, 2})
		sel := col.Scan(bpagg.LessEq(max64))
		wantOverflowPanic(t, 1, 2, func() { col.Sum(sel, bpagg.Access(bpagg.Reconstruct)) })
		_, err := col.SumContext(nil, sel, bpagg.Access(bpagg.Reconstruct))
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			t.Fatalf("%s: reconstruct SumContext err = %v; want overflow", layout, err)
		}
	}
}

// TestRegressionSumOverflowGroupBy: per-group SUM inherits the contract —
// a group whose values wrap panics with the group's exact total.
func TestRegressionSumOverflowGroupBy(t *testing.T) {
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		tbl := bpagg.NewTable()
		tbl.AddColumn("a", layout, 64)
		tbl.AddColumn("g", layout, 1)
		tbl.AppendColumnar(map[string][]uint64{
			"a": {max64, 5, max64, 7},
			"g": {1, 0, 1, 0},
		})
		g := tbl.Query().GroupBy("g")
		// group 1 sums to 2·(2^64−1) = 2^65−2: hi=1, lo=2^64−2
		wantOverflowPanic(t, 1, max64-1, func() { g.Sum("a") })
	}
}

// TestRegressionSumNearBoundaryExact: columns where overflow is possible
// (so the checked kernels run) but the actual selection fits must return
// the exact uint64 — no false positives, no lost precision.
func TestRegressionSumNearBoundaryExact(t *testing.T) {
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		// n=2, k=64: possible, but max64+0 fits exactly.
		col := bpagg.FromValues(layout, 64, []uint64{max64, 0})
		if got := col.Sum(col.All()); got != max64 {
			t.Fatalf("%s: sum = %d, want %d", layout, got, max64)
		}
		// 2·(2^63−1) = 2^64−2: the largest even near-miss.
		m63 := uint64(1)<<63 - 1
		col = bpagg.FromValues(layout, 63, []uint64{m63, m63, 0})
		if got := col.Sum(col.All()); got != max64-1 {
			t.Fatalf("%s: sum = %d, want %d", layout, got, max64-1)
		}
		if got, ok := col.Avg(col.All()); !ok || got != float64(max64-1)/3 {
			t.Fatalf("%s: avg = %v (%v)", layout, got, ok)
		}
	}
}

// TestRegressionRankEdgeCases pins the rank contract the oracle verified:
// rank 0 and rank count+1 are out of range, rank 1 is the minimum, rank
// count the maximum — on both layouts and both query routes.
func TestRegressionRankEdgeCases(t *testing.T) {
	vals := []uint64{5, 1, 4, 1, 9, 2, 6}
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		tbl := bpagg.NewTable()
		tbl.AddColumn("a", layout, 8)
		tbl.AppendColumnar(map[string][]uint64{"a": vals})
		q := func() *bpagg.Query { return tbl.Query().Where("a", bpagg.LessEq(255)) }
		if _, ok := q().Rank("a", 0); ok {
			t.Fatalf("%s: rank 0 reported ok", layout)
		}
		if _, ok := q().Rank("a", 8); ok {
			t.Fatalf("%s: rank count+1 reported ok", layout)
		}
		if v, ok := q().Rank("a", 1); !ok || v != 1 {
			t.Fatalf("%s: rank 1 = %d (%v), want 1", layout, v, ok)
		}
		if v, ok := q().Rank("a", 7); !ok || v != 9 {
			t.Fatalf("%s: rank count = %d (%v), want 9", layout, v, ok)
		}

		col := tbl.Column("a")
		empty := col.Scan(bpagg.Greater(200))
		if _, ok := col.Median(empty); ok {
			t.Fatalf("%s: median of empty selection reported ok", layout)
		}
		if _, ok := col.Rank(empty, 1); ok {
			t.Fatalf("%s: rank over empty selection reported ok", layout)
		}
		if _, ok := col.Quantile(empty, 0.5); ok {
			t.Fatalf("%s: quantile over empty selection reported ok", layout)
		}
	}
}

// TestRegressionEvenCountMedianLower pins MEDIAN to the lower median
// (rank (count+1)/2) for even selections, matching the oracle.
func TestRegressionEvenCountMedianLower(t *testing.T) {
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		col := bpagg.FromValues(layout, 8, []uint64{10, 20, 30, 40})
		if v, ok := col.Median(col.All()); !ok || v != 20 {
			t.Fatalf("%s: median = %d (%v), want lower median 20", layout, v, ok)
		}
		// Quantile 0.5 uses nearest-rank and must agree with MEDIAN.
		if v, ok := col.Quantile(col.All(), 0.5); !ok || v != 20 {
			t.Fatalf("%s: quantile(0.5) = %d (%v), want 20", layout, v, ok)
		}
	}
}

// TestRegressionAvgNoOverflowPrecision: AVG on a checked column with a
// fitting sum reproduces the plain float64(sum)/float64(count) result.
func TestRegressionAvgNoOverflowPrecision(t *testing.T) {
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		col := bpagg.FromValues(layout, 64, []uint64{max64, 0, 0, 0})
		got, ok := col.Avg(col.All())
		want := float64(max64) / 4
		if !ok || math.Abs(got-want) > want*1e-15 {
			t.Fatalf("%s: avg = %v (%v), want %v", layout, got, ok, want)
		}
	}
}
