package bpagg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestDecimalColumn(t *testing.T) {
	codec := Decimal{Scale: 2, Max: 10000}
	for _, layout := range []Layout{VBP, HBP} {
		col := NewDecimalColumn(layout, codec)
		vals := []float64{12.34, 0, 9999.99, 500.5, 12.33}
		col.Append(vals...)
		if col.Len() != 5 {
			t.Fatalf("%v: Len = %d", layout, col.Len())
		}
		for i, want := range vals {
			if got := col.Value(i); got != want {
				t.Fatalf("%v: Value(%d) = %v, want %v", layout, i, got, want)
			}
		}
		sel := col.ScanLess(500.5)
		if sel.Count() != 3 { // 12.34, 0, 12.33
			t.Fatalf("%v: ScanLess(500.5) = %d rows", layout, sel.Count())
		}
		if got := col.Sum(sel); math.Abs(got-24.67) > 1e-9 {
			t.Fatalf("%v: Sum = %v", layout, got)
		}
		if got, ok := col.Min(col.All()); !ok || got != 0 {
			t.Fatalf("%v: Min = %v", layout, got)
		}
		if got, ok := col.Max(col.All()); !ok || got != 9999.99 {
			t.Fatalf("%v: Max = %v", layout, got)
		}
		if got, ok := col.Median(col.All()); !ok || got != 12.34 {
			t.Fatalf("%v: Median = %v", layout, got)
		}
		if got, ok := col.Avg(sel); !ok || math.Abs(got-24.67/3) > 1e-9 {
			t.Fatalf("%v: Avg = %v", layout, got)
		}
		if got, ok := col.Quantile(col.All(), 1); !ok || got != 9999.99 {
			t.Fatalf("%v: Quantile(1) = %v", layout, got)
		}
		between := col.ScanBetween(12.34, 500.5)
		if between.Count() != 2 {
			t.Fatalf("%v: ScanBetween = %d rows", layout, between.Count())
		}
		if col.ScanGreaterEq(9999.99).Count() != 1 || col.ScanGreater(9999.99).Count() != 0 ||
			col.ScanLessEq(0).Count() != 1 {
			t.Fatalf("%v: boundary scans wrong", layout)
		}
	}
}

func TestDecimalColumnNulls(t *testing.T) {
	col := NewDecimalColumn(VBP, Decimal{Scale: 1, Max: 100})
	col.Append(10.5)
	col.AppendNull()
	col.Append(20.5)
	if got := col.Sum(col.All()); got != 31 {
		t.Fatalf("Sum = %v", got)
	}
	if got, ok := col.Avg(col.All()); !ok || got != 15.5 {
		t.Fatalf("Avg = %v", got)
	}
}

func TestSignedColumn(t *testing.T) {
	codec := Signed{Min: -500, Max: 500}
	col := NewSignedColumn(HBP, codec)
	vals := []int64{-500, -1, 0, 250, 500}
	col.Append(vals...)
	for i, want := range vals {
		if got := col.Value(i); got != want {
			t.Fatalf("Value(%d) = %d, want %d", i, got, want)
		}
	}
	if got := col.Sum(col.All()); got != 249 {
		t.Fatalf("Sum = %d", got)
	}
	neg := col.ScanLess(0)
	if neg.Count() != 2 {
		t.Fatalf("ScanLess(0) = %d rows", neg.Count())
	}
	if got := col.Sum(neg); got != -501 {
		t.Fatalf("Sum(neg) = %d", got)
	}
	if got, ok := col.Min(col.All()); !ok || got != -500 {
		t.Fatalf("Min = %d", got)
	}
	if got, ok := col.Max(col.All()); !ok || got != 500 {
		t.Fatalf("Max = %d", got)
	}
	if got, ok := col.Median(col.All()); !ok || got != 0 {
		t.Fatalf("Median = %d", got)
	}
	if got, ok := col.Avg(col.All()); !ok || got != 249.0/5 {
		t.Fatalf("Avg = %v", got)
	}
	if col.ScanEqual(250).Count() != 1 || col.ScanGreater(250).Count() != 1 ||
		col.ScanBetween(-1, 250).Count() != 3 {
		t.Fatal("signed scans wrong")
	}
}

func TestSignedColumnRandomizedSum(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	codec := Signed{Min: -10000, Max: 10000}
	col := NewSignedColumn(VBP, codec)
	var want int64
	for i := 0; i < 3000; i++ {
		v := int64(rng.Intn(20001)) - 10000
		col.Append(v)
		want += v
	}
	if got := col.Sum(col.All()); got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
}

func TestStringColumn(t *testing.T) {
	keys := []string{"URGENT", "HIGH", "MEDIUM", "LOW", "NONE"}
	col := NewStringColumn(VBP, keys)
	rows := []string{"HIGH", "LOW", "NONE", "HIGH", "URGENT", "MEDIUM"}
	col.Append(rows...)
	for i, want := range rows {
		if got := col.Value(i); got != want {
			t.Fatalf("Value(%d) = %q, want %q", i, got, want)
		}
	}
	if got := col.ScanEqual("HIGH").Count(); got != 2 {
		t.Fatalf("ScanEqual(HIGH) = %d", got)
	}
	if got := col.ScanEqual("MISSING").Count(); got != 0 {
		t.Fatalf("ScanEqual(MISSING) = %d", got)
	}
	// Lexicographic range HIGH..MEDIUM covers HIGH, LOW, MEDIUM.
	if got := col.ScanRange("HIGH", "MEDIUM").Count(); got != 4 {
		t.Fatalf("ScanRange = %d", got)
	}
	if got, ok := col.Min(col.All()); !ok || got != "HIGH" {
		t.Fatalf("Min = %q", got)
	}
	if got, ok := col.Max(col.All()); !ok || got != "URGENT" {
		t.Fatalf("Max = %q", got)
	}
	// Dictionary-order median of sorted {HIGH,HIGH,LOW,MEDIUM,NONE,URGENT}
	// is LOW (3rd of 6).
	sorted := append([]string(nil), rows...)
	sort.Strings(sorted)
	if got, ok := col.Median(col.All()); !ok || got != sorted[(len(sorted)+1)/2-1] {
		t.Fatalf("Median = %q, want %q", got, sorted[(len(sorted)+1)/2-1])
	}
	if got := col.Count(col.All()); got != 6 {
		t.Fatalf("Count = %d", got)
	}
}

func TestStringColumnUnknownAppendPanics(t *testing.T) {
	col := NewStringColumn(HBP, []string{"a", "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("Append of unknown key did not panic")
		}
	}()
	col.Append("zzz")
}

func TestStringColumnNulls(t *testing.T) {
	col := NewStringColumn(HBP, []string{"x", "y"})
	col.Append("y")
	col.AppendNull()
	col.Append("x")
	if got := col.Count(col.All()); got != 2 {
		t.Fatalf("Count = %d", got)
	}
	if got, ok := col.Min(col.All()); !ok || got != "x" {
		t.Fatalf("Min = %q", got)
	}
	if got := col.ScanEqual("x").Count(); got != 1 {
		t.Fatalf("ScanEqual(x) = %d", got)
	}
}

func TestTypedRawComposition(t *testing.T) {
	// Selections from typed columns compose across columns.
	price := NewDecimalColumn(VBP, Decimal{Scale: 2, Max: 1000})
	status := NewStringColumn(VBP, []string{"ok", "err"})
	price.Append(10, 20, 30, 40)
	status.Append("ok", "err", "ok", "err")
	sel := price.ScanGreater(15).And(status.ScanEqual("ok"))
	if sel.Count() != 1 || !sel.Get(2) {
		t.Fatalf("composed selection wrong: %d rows", sel.Count())
	}
	if got := price.Sum(sel); got != 30 {
		t.Fatalf("Sum = %v", got)
	}
}
