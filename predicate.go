package bpagg

import (
	"strconv"

	"bpagg/internal/scan"
)

// Predicate is a simple comparison against constant codes, evaluated by a
// bit-parallel scan. Complex conditions compose by combining the resulting
// selection bitmaps with And/Or/AndNot/Not (paper §II-E).
type Predicate struct {
	p    scan.Predicate
	list []uint64 // non-nil for In: evaluated as a union of equality scans
}

// Equal selects rows with value == v.
func Equal(v uint64) Predicate { return Predicate{p: scan.Predicate{Op: scan.EQ, A: v}} }

// NotEqual selects rows with value != v.
func NotEqual(v uint64) Predicate { return Predicate{p: scan.Predicate{Op: scan.NE, A: v}} }

// Less selects rows with value < v.
func Less(v uint64) Predicate { return Predicate{p: scan.Predicate{Op: scan.LT, A: v}} }

// LessEq selects rows with value <= v.
func LessEq(v uint64) Predicate { return Predicate{p: scan.Predicate{Op: scan.LE, A: v}} }

// Greater selects rows with value > v.
func Greater(v uint64) Predicate { return Predicate{p: scan.Predicate{Op: scan.GT, A: v}} }

// GreaterEq selects rows with value >= v.
func GreaterEq(v uint64) Predicate { return Predicate{p: scan.Predicate{Op: scan.GE, A: v}} }

// Between selects rows with lo <= value <= hi.
func Between(lo, hi uint64) Predicate {
	return Predicate{p: scan.Predicate{Op: scan.Between, A: lo, B: hi}}
}

// In selects rows whose value equals any of vs — an IN-list, evaluated as
// the union of one BIT-PARALLEL-EQUAL scan per member. An empty list
// selects nothing.
func In(vs ...uint64) Predicate {
	list := make([]uint64, len(vs))
	copy(list, vs)
	return Predicate{list: list}
}

// Matches reports whether a plain value satisfies the predicate — the
// scalar semantics the bit-parallel scans implement.
func (p Predicate) Matches(v uint64) bool {
	if p.list != nil {
		for _, x := range p.list {
			if v == x {
				return true
			}
		}
		return false
	}
	return p.p.Matches(v)
}

// mayMatch reports whether any value in [min, max] can satisfy the
// predicate — the shard-catalog pruning test. It is conservative in one
// direction only: false proves no row of the shard can match, so the
// shard's packed words are never touched; true means the shard must be
// scanned (and the per-segment zone maps take over from there).
func (p Predicate) mayMatch(min, max uint64) bool {
	if p.list != nil {
		for _, x := range p.list {
			if min <= x && x <= max {
				return true
			}
		}
		return false
	}
	switch p.p.Op {
	case scan.EQ:
		return min <= p.p.A && p.p.A <= max
	case scan.NE:
		return !(min == max && min == p.p.A)
	case scan.LT:
		return min < p.p.A
	case scan.LE:
		return min <= p.p.A
	case scan.GT:
		return max > p.p.A
	case scan.GE:
		return max >= p.p.A
	case scan.Between:
		return p.p.A <= max && p.p.B >= min && p.p.A <= p.p.B
	}
	return true
}

// String renders the predicate in SQL-ish form.
func (p Predicate) String() string {
	if p.list != nil {
		s := "IN ("
		for i, v := range p.list {
			if i > 0 {
				s += ", "
			}
			s += strconv.FormatUint(v, 10)
		}
		return s + ")"
	}
	if p.p.Op == scan.Between {
		return "BETWEEN " + strconv.FormatUint(p.p.A, 10) + " AND " + strconv.FormatUint(p.p.B, 10)
	}
	return p.p.Op.String() + " " + strconv.FormatUint(p.p.A, 10)
}
