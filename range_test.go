package bpagg

import (
	"math/rand"
	"sync"
	"testing"
)

// rangeTestVals builds a deterministic value sequence that exercises
// every fringe shape without overflowing 16-bit codes.
func rangeTestVals(n int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() % 50000
	}
	return vals
}

// refRange computes the reference aggregates over vals[lo:hi) restricted
// to pass (nil = all rows).
func refRange(vals []uint64, lo, hi int, pass func(int) bool) (cnt, sum, mn, mx uint64, any bool) {
	if hi > len(vals) {
		hi = len(vals)
	}
	for i := lo; i < hi; i++ {
		if pass != nil && !pass(i) {
			continue
		}
		v := vals[i]
		if !any {
			mn, mx = v, v
		} else {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		cnt++
		sum += v
		any = true
	}
	return
}

func rangeTestTable(layout Layout, vals []uint64) *Table {
	tbl := NewTable()
	tbl.AddColumn("v", layout, 16)
	tbl.AddColumn("g", layout, 8)
	g := make([]uint64, len(vals))
	for i := range g {
		g[i] = uint64(i % 13)
	}
	tbl.AppendColumnar(map[string][]uint64{"v": vals, "g": g})
	return tbl
}

// TestRangeMatchesScan checks the index-served fast path and the
// filtered fallback path against a straight-line reference, over a
// battery of ranges hitting every fringe/interior/tail shape.
func TestRangeMatchesScan(t *testing.T) {
	const n = 1000
	vals := rangeTestVals(n)
	ranges := [][2]int{{0, n}, {0, 0}, {5, 5}, {0, 64}, {64, 128}, {1, 63},
		{63, 65}, {100, 900}, {130, 131}, {0, n + 999}, {960, n}, {970, 990}, {n, n + 5}}
	for _, layout := range []Layout{VBP, HBP} {
		tbl := rangeTestTable(layout, vals)
		for _, r := range ranges {
			lo, hi := r[0], r[1]
			q := tbl.Query().Range(lo, hi)
			cnt, sum, mn, mx, any := refRange(vals, lo, hi, nil)
			if got := q.CountRows(); got != cnt {
				t.Fatalf("%s CountRows(%d,%d) = %d, want %d", layout, lo, hi, got, cnt)
			}
			if got := q.Sum("v"); got != sum {
				t.Fatalf("%s Sum(%d,%d) = %d, want %d", layout, lo, hi, got, sum)
			}
			if v, ok := q.Min("v"); ok != any || (ok && v != mn) {
				t.Fatalf("%s Min(%d,%d) = (%d,%v), want (%d,%v)", layout, lo, hi, v, ok, mn, any)
			}
			if v, ok := q.Max("v"); ok != any || (ok && v != mx) {
				t.Fatalf("%s Max(%d,%d) = (%d,%v), want (%d,%v)", layout, lo, hi, v, ok, mx, any)
			}
			if v, ok := q.Avg("v"); ok != any || (ok && v != float64(sum)/float64(cnt)) {
				t.Fatalf("%s Avg(%d,%d) = (%v,%v), want sum/cnt = %v", layout, lo, hi, v, ok, float64(sum)/float64(cnt))
			}

			// Filtered twin: the range becomes one more conjunct.
			fq := tbl.Query().Where("g", LessEq(5)).Range(lo, hi)
			fcnt, fsum, fmn, _, fany := refRange(vals, lo, hi, func(i int) bool { return i%13 <= 5 })
			if got := fq.CountRows(); got != fcnt {
				t.Fatalf("%s filtered CountRows(%d,%d) = %d, want %d", layout, lo, hi, got, fcnt)
			}
			if got := fq.Sum("v"); got != fsum {
				t.Fatalf("%s filtered Sum(%d,%d) = %d, want %d", layout, lo, hi, got, fsum)
			}
			if v, ok := fq.Min("v"); ok != fany || (ok && v != fmn) {
				t.Fatalf("%s filtered Min(%d,%d) = (%d,%v), want (%d,%v)", layout, lo, hi, v, ok, fmn, fany)
			}
		}

		// The fast path must actually be index-served, with only the two
		// boundary segments touching packed words.
		q := tbl.Query().WithStats()
		_ = q.Range(1, n-1).Sum("v")
		st := q.Stats()
		if st.SegmentsIndexServed == 0 {
			t.Fatalf("%s: unfiltered range sum reported no index-served segments: %+v", layout, st)
		}
		if st.RangeFringeWords == 0 {
			t.Fatalf("%s: unaligned range reported no fringe words: %+v", layout, st)
		}
	}
}

// TestRangeMedianRankQuantile pins the rank-family fallback on ranges.
func TestRangeMedianRankQuantile(t *testing.T) {
	vals := rangeTestVals(300)
	for _, layout := range []Layout{VBP, HBP} {
		tbl := rangeTestTable(layout, vals)
		lo, hi := 37, 251
		sorted := append([]uint64(nil), vals[lo:hi]...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		q := tbl.Query().Range(lo, hi)
		if v, ok := q.Median("v"); !ok || v != sorted[(len(sorted)-1)/2] {
			t.Fatalf("%s Median = (%d,%v), want %d", layout, v, ok, sorted[(len(sorted)-1)/2])
		}
		if v, ok := q.Rank("v", 1); !ok || v != sorted[0] {
			t.Fatalf("%s Rank(1) = (%d,%v), want %d", layout, v, ok, sorted[0])
		}
		if v, ok := q.Quantile("v", 1); !ok || v != sorted[len(sorted)-1] {
			t.Fatalf("%s Quantile(1) = (%d,%v), want %d", layout, v, ok, sorted[len(sorted)-1])
		}
	}
}

// TestRangeIndexExactWithStaleCaches pins the staleness contract: the
// index never trusts a cache that cannot vouch for exactness. Whether the
// caches go stale before the index is built or between appends, range
// answers stay exact.
func TestRangeIndexExactWithStaleCaches(t *testing.T) {
	vals := rangeTestVals(400)
	for _, layout := range []Layout{VBP, HBP} {
		// Stale before the index ever exists: builder recomputes from words.
		tbl := rangeTestTable(layout, vals)
		staleZones(t, tbl.Column("v"))
		_, sum, _, _, _ := refRange(vals, 10, 390, nil)
		if got := tbl.Query().Range(10, 390).Sum("v"); got != sum {
			t.Fatalf("%s: stale-cache range sum = %d, want %d", layout, got, sum)
		}

		// Stale after the index enabled, then more rows arrive: the new
		// segments must be recomputed, not served from the refused cache.
		tbl2 := rangeTestTable(layout, vals[:200])
		if got := tbl2.Query().Range(0, 200).Sum("v"); got != naiveSum(vals[:200]) {
			t.Fatalf("%s: warm range sum wrong", layout)
		}
		staleZones(t, tbl2.Column("v"))
		g := make([]uint64, 200)
		for i := range g {
			g[i] = uint64((200 + i) % 13)
		}
		tbl2.AppendColumnar(map[string][]uint64{"v": vals[200:400], "g": g})
		if got := tbl2.Query().Range(0, 400).Sum("v"); got != naiveSum(vals[:400]) {
			t.Fatalf("%s: post-stale appended range sum = %d, want %d", layout, got, naiveSum(vals[:400]))
		}
	}
}

// TestWindowMatchesRange checks tumbling, sliding, and gapped windows
// against per-window references, fast path and filtered fallback.
func TestWindowMatchesRange(t *testing.T) {
	const n = 500
	vals := rangeTestVals(n)
	shapes := [][2]int{{100, 100}, {128, 64}, {50, 150}, {700, 300}, {1, 1}}
	for _, layout := range []Layout{VBP, HBP} {
		tbl := rangeTestTable(layout, vals)
		for _, sh := range shapes {
			size, step := sh[0], sh[1]
			w := tbl.Query().Window(size, step)
			sums := w.Sum("v")
			counts := w.CountRows()
			mins, minOK := w.Min("v")
			avgs, avgOK := w.Avg("v")
			i := 0
			for b := 0; b < n; b += step {
				cnt, sum, mn, _, any := refRange(vals, b, b+size, nil)
				if counts[i] != cnt || sums[i] != sum {
					t.Fatalf("%s window(%d,%d)[%d]: count/sum = %d/%d, want %d/%d",
						layout, size, step, i, counts[i], sums[i], cnt, sum)
				}
				if minOK[i] != any || (any && mins[i] != mn) {
					t.Fatalf("%s window(%d,%d)[%d]: min = (%d,%v), want (%d,%v)",
						layout, size, step, i, mins[i], minOK[i], mn, any)
				}
				if avgOK[i] != any || (any && avgs[i] != float64(sum)/float64(cnt)) {
					t.Fatalf("%s window(%d,%d)[%d]: avg mismatch", layout, size, step, i)
				}
				i++
			}
			if i != len(sums) {
				t.Fatalf("%s window(%d,%d): %d windows, want %d", layout, size, step, len(sums), i)
			}

			// Filtered fallback windows.
			fw := tbl.Query().Where("g", Less(7)).Window(size, step)
			fsums := fw.Sum("v")
			i = 0
			for b := 0; b < n; b += step {
				_, sum, _, _, _ := refRange(vals, b, b+size, func(j int) bool { return j%13 < 7 })
				if fsums[i] != sum {
					t.Fatalf("%s filtered window(%d,%d)[%d]: sum = %d, want %d",
						layout, size, step, i, fsums[i], sum)
				}
				i++
			}
		}
	}
	// Empty table: empty slices, not nil panics.
	empty := NewTable()
	empty.AddColumn("v", VBP, 8)
	if got := empty.Query().Window(10, 10).Sum("v"); len(got) != 0 {
		t.Fatalf("empty table window sum = %v, want empty", got)
	}
}

// TestShardedRangeMatchesFlat checks the sharded fan-out (with shard
// pruning) against the flat engine, across thread counts and filters.
func TestShardedRangeMatchesFlat(t *testing.T) {
	const n = 1000
	vals := rangeTestVals(n)
	for _, layout := range []Layout{VBP, HBP} {
		flat := rangeTestTable(layout, vals)
		st := ShardTable(rangeTestTable(layout, vals), 256)
		for _, threads := range []int{1, 8} {
			for _, r := range [][2]int{{0, n}, {300, 520}, {255, 257}, {999, n + 50}, {40, 41}, {0, 0}} {
				lo, hi := r[0], r[1]
				fq := flat.Query().Range(lo, hi)
				sq := st.Query().With(Parallel(threads)).Range(lo, hi)
				if a, b := fq.CountRows(), sq.CountRows(); a != b {
					t.Fatalf("%s t=%d CountRows(%d,%d): sharded %d, flat %d", layout, threads, lo, hi, b, a)
				}
				if a, b := fq.Sum("v"), sq.Sum("v"); a != b {
					t.Fatalf("%s t=%d Sum(%d,%d): sharded %d, flat %d", layout, threads, lo, hi, b, a)
				}
				av, aok := fq.Min("v")
				bv, bok := sq.Min("v")
				if av != bv || aok != bok {
					t.Fatalf("%s t=%d Min(%d,%d): sharded (%d,%v), flat (%d,%v)", layout, threads, lo, hi, bv, bok, av, aok)
				}
				av, aok = fq.Median("v")
				bv, bok = sq.Median("v")
				if av != bv || aok != bok {
					t.Fatalf("%s t=%d Median(%d,%d): sharded (%d,%v), flat (%d,%v)", layout, threads, lo, hi, bv, bok, av, aok)
				}

				ffq := flat.Query().Where("g", GreaterEq(4)).Range(lo, hi)
				fsq := st.Query().With(Parallel(threads)).Where("g", GreaterEq(4)).Range(lo, hi)
				if a, b := ffq.Sum("v"), fsq.Sum("v"); a != b {
					t.Fatalf("%s t=%d filtered Sum(%d,%d): sharded %d, flat %d", layout, threads, lo, hi, b, a)
				}
			}

			// Window parity.
			fw := flat.Query().Window(300, 200)
			sw := st.Query().With(Parallel(threads)).Window(300, 200)
			fs, ss := fw.Sum("v"), sw.Sum("v")
			if len(fs) != len(ss) {
				t.Fatalf("%s t=%d window counts differ: %d vs %d", layout, threads, len(fs), len(ss))
			}
			for i := range fs {
				if fs[i] != ss[i] {
					t.Fatalf("%s t=%d window[%d]: sharded %d, flat %d", layout, threads, i, ss[i], fs[i])
				}
			}
		}

		// Shards wholly outside the range must prune.
		q := st.Query().WithStats()
		_ = q.Range(300, 520).Sum("v")
		stats := q.Stats()
		if stats.ShardsScanned != 2 || stats.ShardsPruned != 2 {
			t.Fatalf("%s: range(300,520) scanned/pruned = %d/%d, want 2/2",
				layout, stats.ShardsScanned, stats.ShardsPruned)
		}
	}
}

// TestRangeAppendWhileQuery hammers concurrent appends against pinned
// range and window queries: every observed full-range SUM must equal the
// prefix total of some published epoch — never a torn in-between value.
// Run with -race to exercise the snapshot memory contract.
func TestRangeAppendWhileQuery(t *testing.T) {
	const (
		base  = 500
		batch = 97
		total = 500 + 97*40
	)
	f := func(i int) uint64 { return uint64(i%911 + 7) }
	all := make([]uint64, total)
	for i := range all {
		all[i] = f(i)
	}
	// Epochs publish only at batch boundaries, so the set of valid totals
	// is the prefix sums at base, base+batch, base+2·batch, ….
	validSum := map[uint64]int{}
	var run uint64
	for i := 0; i < total; i++ {
		run += all[i]
		if m := i + 1; m >= base && (m-base)%batch == 0 {
			validSum[run] = m
		}
	}
	for _, layout := range []Layout{VBP, HBP} {
		tbl := NewTable()
		tbl.AddColumn("v", layout, 10)
		tbl.AppendColumnar(map[string][]uint64{"v": all[:base]})
		// Enable the index before the writers start.
		if got := tbl.Query().Range(0, base).Sum("v"); got != naiveSum(all[:base]) {
			t.Fatalf("%s: warm-up sum wrong", layout)
		}

		var wg sync.WaitGroup
		stop := make(chan struct{})
		fail := make(chan string, 16)
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					sum := tbl.Query().Range(0, total+1).Sum("v")
					if _, ok := validSum[sum]; !ok {
						select {
						case fail <- layout.String() + ": torn range sum observed":
						default:
						}
						return
					}
					wsums := tbl.Query().Window(total+1, total+1).Sum("v")
					if len(wsums) > 0 {
						if _, ok := validSum[wsums[0]]; !ok {
							select {
							case fail <- layout.String() + ": torn window sum observed":
							default:
							}
							return
						}
					}
				}
			}()
		}
		for off := base; off < total; off += batch {
			tbl.AppendColumnar(map[string][]uint64{"v": all[off : off+batch]})
		}
		close(stop)
		wg.Wait()
		select {
		case msg := <-fail:
			t.Fatal(msg)
		default:
		}
		if got := tbl.Query().Range(0, total).Sum("v"); got != run {
			t.Fatalf("%s: final sum = %d, want %d", layout, got, run)
		}
	}
}
