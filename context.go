package bpagg

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bpagg/internal/nbp"
	"bpagg/internal/parallel"
)

// Error handling and cancellation contract
//
// The ...Context methods below are the hardened twins of the plain
// aggregate methods: they accept a context.Context, validate their
// arguments instead of panicking, and return errors for everything that
// can go wrong at runtime — cancellation (context.Canceled), deadlines
// (context.DeadlineExceeded), mismatched selections, out-of-range
// quantiles, and recovered worker panics (*PanicError).
//
// Workers check the context between segment blocks and at every radix
// rendezvous of MEDIAN/rank, so cancellation of a long aggregation over
// a large column takes effect within a fraction of a millisecond of
// work per worker rather than after a full scan. On any error all
// worker goroutines are joined before the call returns; no goroutine
// outlives its aggregate.
//
// The plain methods (Sum, Median, ...) keep their original contract:
// panics are reserved for programmer errors (mismatched selection
// lengths, out-of-range quantile constants), and a worker panic
// propagates. Code operating on untrusted input should use the
// ...Context variants.

// PanicError reports a worker panic recovered during a parallel
// aggregate: one corrupt segment or faulty kernel surfaces as an error
// on the caller instead of crashing the process. Value and Stack carry
// the original panic for diagnosis.
type PanicError struct {
	Worker int
	Value  any
	Stack  []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("bpagg: aggregation worker %d panicked: %v", e.Worker, e.Value)
}

// wrapExecErr rewraps internal execution errors into their public form.
func wrapExecErr(err error) error {
	if err == nil {
		return nil
	}
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		return &PanicError{Worker: pe.Worker, Value: pe.Value, Stack: pe.Stack}
	}
	var oe *parallel.OverflowError
	if errors.As(err, &oe) {
		return &OverflowError{Hi: oe.Hi, Lo: oe.Lo}
	}
	return err
}

// orBackground tolerates a nil ctx (treated as context.Background()) so
// the Context API is safe to call from code that may not have one.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// checkSelErr is the error-returning twin of checkSel.
func (c *Column) checkSelErr(sel *Bitmap) error {
	if sel == nil {
		return fmt.Errorf("bpagg: nil selection")
	}
	if sel.b.Len() != c.Len() {
		return fmt.Errorf("bpagg: selection length %d does not match column length %d",
			sel.b.Len(), c.Len())
	}
	return nil
}

// CountContext returns the number of selected non-NULL rows. It exists
// for symmetry with the other Context aggregates: COUNT is one popcount
// pass and is not worth cancelling mid-flight, so only the entry check
// observes ctx.
func (c *Column) CountContext(ctx context.Context, sel *Bitmap) (uint64, error) {
	if err := c.checkSelErr(sel); err != nil {
		return 0, err
	}
	if err := orBackground(ctx).Err(); err != nil {
		return 0, err
	}
	return c.Count(sel), nil
}

// SumContext is Sum with cancellation, deadline, and panic-recovery
// support.
func (c *Column) SumContext(ctx context.Context, sel *Bitmap, opts ...ExecOption) (uint64, error) {
	ctx = orBackground(ctx)
	if err := c.checkSelErr(sel); err != nil {
		return 0, err
	}
	o := execOptions(opts)
	eff := c.effective(sel)
	if c.useReconstruct(eff, o) {
		// The reconstruction baseline only wins on sparse selections, so
		// the whole call is short; ctx is observed at entry only.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		defer recordReconstruct(o.par.Stats, eff, time.Now())
		if c.sumOverflowPossible() {
			hi, lo := nbp.Sum128(c.nbpSource(), eff)
			if hi != 0 {
				return 0, &OverflowError{Hi: hi, Lo: lo}
			}
			return lo, nil
		}
		return nbp.SumOpt(c.nbpSource(), eff, nbpOptions(o)), nil
	}
	var (
		v   uint64
		err error
	)
	if c.layout == VBP {
		v, err = parallel.VBPSumCtx(ctx, c.v, eff, o.par)
	} else {
		v, err = parallel.HBPSumCtx(ctx, c.h, eff, o.par)
	}
	return v, wrapExecErr(err)
}

// MinContext is Min with cancellation, deadline, and panic-recovery
// support.
func (c *Column) MinContext(ctx context.Context, sel *Bitmap, opts ...ExecOption) (uint64, bool, error) {
	return c.extremeContext(ctx, sel, opts, true)
}

// MaxContext is Max with cancellation, deadline, and panic-recovery
// support.
func (c *Column) MaxContext(ctx context.Context, sel *Bitmap, opts ...ExecOption) (uint64, bool, error) {
	return c.extremeContext(ctx, sel, opts, false)
}

func (c *Column) extremeContext(ctx context.Context, sel *Bitmap, opts []ExecOption, wantMin bool) (uint64, bool, error) {
	ctx = orBackground(ctx)
	if err := c.checkSelErr(sel); err != nil {
		return 0, false, err
	}
	o := execOptions(opts)
	eff := c.effective(sel)
	if c.useReconstruct(eff, o) {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		defer recordReconstruct(o.par.Stats, eff, time.Now())
		if wantMin {
			v, ok := nbp.MinOpt(c.nbpSource(), eff, nbpOptions(o))
			return v, ok, nil
		}
		v, ok := nbp.MaxOpt(c.nbpSource(), eff, nbpOptions(o))
		return v, ok, nil
	}
	var (
		v   uint64
		ok  bool
		err error
	)
	switch {
	case c.layout == VBP && wantMin:
		v, ok, err = parallel.VBPMinCtx(ctx, c.v, eff, o.par)
	case c.layout == VBP:
		v, ok, err = parallel.VBPMaxCtx(ctx, c.v, eff, o.par)
	case wantMin:
		v, ok, err = parallel.HBPMinCtx(ctx, c.h, eff, o.par)
	default:
		v, ok, err = parallel.HBPMaxCtx(ctx, c.h, eff, o.par)
	}
	return v, ok, wrapExecErr(err)
}

// AvgContext is Avg with cancellation, deadline, and panic-recovery
// support.
func (c *Column) AvgContext(ctx context.Context, sel *Bitmap, opts ...ExecOption) (float64, bool, error) {
	ctx = orBackground(ctx)
	if err := c.checkSelErr(sel); err != nil {
		return 0, false, err
	}
	o := execOptions(opts)
	eff := c.effective(sel)
	if c.useReconstruct(eff, o) {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		defer recordReconstruct(o.par.Stats, eff, time.Now())
		if c.sumOverflowPossible() {
			cnt := eff.Count()
			if cnt == 0 {
				return 0, false, nil
			}
			hi, lo := nbp.Sum128(c.nbpSource(), eff)
			if hi != 0 {
				return 0, false, &OverflowError{Hi: hi, Lo: lo}
			}
			return float64(lo) / float64(cnt), true, nil
		}
		v, ok := nbp.AvgOpt(c.nbpSource(), eff, nbpOptions(o))
		return v, ok, nil
	}
	var (
		v   float64
		ok  bool
		err error
	)
	if c.layout == VBP {
		v, ok, err = parallel.VBPAvgCtx(ctx, c.v, eff, o.par)
	} else {
		v, ok, err = parallel.HBPAvgCtx(ctx, c.h, eff, o.par)
	}
	return v, ok, wrapExecErr(err)
}

// MedianContext is Median with cancellation, deadline, and
// panic-recovery support. The multi-step radix refinement checks ctx at
// every per-bit (VBP) or per-chunk (HBP) rendezvous, so even medians
// over very large columns cancel promptly.
func (c *Column) MedianContext(ctx context.Context, sel *Bitmap, opts ...ExecOption) (uint64, bool, error) {
	ctx = orBackground(ctx)
	if err := c.checkSelErr(sel); err != nil {
		return 0, false, err
	}
	cnt := c.Count(sel)
	if cnt == 0 {
		return 0, false, nil
	}
	return c.rankContext(ctx, sel, (cnt+1)/2, opts)
}

// RankContext is Rank with cancellation, deadline, and panic-recovery
// support. ok is false when fewer than r rows are selected or r is 0.
func (c *Column) RankContext(ctx context.Context, sel *Bitmap, r uint64, opts ...ExecOption) (uint64, bool, error) {
	ctx = orBackground(ctx)
	if err := c.checkSelErr(sel); err != nil {
		return 0, false, err
	}
	return c.rankContext(ctx, sel, r, opts)
}

func (c *Column) rankContext(ctx context.Context, sel *Bitmap, r uint64, opts []ExecOption) (uint64, bool, error) {
	o := execOptions(opts)
	eff := c.effective(sel)
	if c.useReconstruct(eff, o) {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		defer recordReconstruct(o.par.Stats, eff, time.Now())
		v, ok := nbp.RankOpt(c.nbpSource(), eff, r, nbpOptions(o))
		return v, ok, nil
	}
	var (
		v   uint64
		ok  bool
		err error
	)
	if c.layout == VBP {
		v, ok, err = parallel.VBPRankCtx(ctx, c.v, eff, r, o.par)
	} else {
		v, ok, err = parallel.HBPRankCtx(ctx, c.h, eff, r, o.par)
	}
	return v, ok, wrapExecErr(err)
}

// QuantileContext is Quantile with cancellation, deadline, and
// panic-recovery support. Unlike Quantile, an out-of-range q returns an
// error instead of panicking, so q may come from untrusted input.
func (c *Column) QuantileContext(ctx context.Context, sel *Bitmap, q float64, opts ...ExecOption) (uint64, bool, error) {
	ctx = orBackground(ctx)
	if err := c.checkSelErr(sel); err != nil {
		return 0, false, err
	}
	if q < 0 || q > 1 || q != q { // q != q rejects NaN
		return 0, false, fmt.Errorf("bpagg: quantile %v outside [0,1]", q)
	}
	cnt := c.Count(sel)
	if cnt == 0 {
		return 0, false, nil
	}
	r := uint64(float64(cnt)*q + 0.999999999)
	if r == 0 {
		r = 1
	}
	if r > cnt {
		r = cnt
	}
	return c.rankContext(ctx, sel, r, opts)
}
