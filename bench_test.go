// Benchmarks regenerating the paper's evaluation (one family per figure or
// table of §IV). Each sub-benchmark reports ns/tuple so results compare
// directly with the paper's cycles/tuple (divide by your clock to convert).
//
//	go test -bench 'Fig5'   — aggregation BP vs NBP across selectivities
//	go test -bench 'Fig6'   — across value widths
//	go test -bench 'Fig7'   — across data sizes
//	go test -bench 'Fig8'   — multi-threading and wide-word acceleration
//	go test -bench 'Table2' — TPC-H style queries, scan vs aggregation
//
// The cmd/bpagg-bench tool prints the same experiments as paper-style
// tables with speedup columns; see EXPERIMENTS.md for paper-vs-measured.
package bpagg_test

import (
	"fmt"
	"sync"
	"testing"

	"bpagg"
	"bpagg/internal/bench"
	"bpagg/internal/bitvec"
	"bpagg/internal/nbp"
	"bpagg/internal/parallel"
	"bpagg/internal/scan"
	"bpagg/internal/tpch"
)

// benchN is the micro-benchmark column size. Scaled down from the paper's
// one billion tuples; the algorithms are streaming, so per-tuple costs are
// size-independent once the column exceeds cache.
const benchN = 1 << 20

var (
	workloadMu    sync.Mutex
	workloadCache = map[string]*bench.Workload{}
)

// workload returns a cached micro-benchmark fixture.
func workload(n, k int, sel float64) *bench.Workload {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	key := fmt.Sprintf("%d/%d/%v", n, k, sel)
	w, ok := workloadCache[key]
	if !ok {
		w = bench.NewWorkload(n, k, sel, 1)
		workloadCache[key] = w
	}
	return w
}

// benchOp runs fn b.N times and reports ns/tuple.
func benchOp(b *testing.B, n int, fn func()) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/tuple")
}

// aggCases enumerates the measured aggregate kernels.
var aggCases = []struct {
	layout tpch.Layout
	agg    bench.Agg
}{
	{tpch.VBP, bench.AggSum}, {tpch.VBP, bench.AggMinMax}, {tpch.VBP, bench.AggMedian},
	{tpch.HBP, bench.AggSum}, {tpch.HBP, bench.AggMinMax}, {tpch.HBP, bench.AggMedian},
}

func bpRunner(w *bench.Workload, layout tpch.Layout, agg bench.Agg, o parallel.Options) func() {
	switch {
	case layout == tpch.VBP && agg == bench.AggSum:
		return func() { parallel.VBPSum(w.V, w.F, o) }
	case layout == tpch.VBP && agg == bench.AggMinMax:
		return func() { parallel.VBPMin(w.V, w.F, o) }
	case layout == tpch.VBP && agg == bench.AggMedian:
		return func() { parallel.VBPMedian(w.V, w.F, o) }
	case layout == tpch.HBP && agg == bench.AggSum:
		return func() { parallel.HBPSum(w.H, w.F, o) }
	case layout == tpch.HBP && agg == bench.AggMinMax:
		return func() { parallel.HBPMin(w.H, w.F, o) }
	default:
		return func() { parallel.HBPMedian(w.H, w.F, o) }
	}
}

func nbpRunner(w *bench.Workload, layout tpch.Layout, agg bench.Agg) func() {
	var src interface {
		At(i int) uint64
		Len() int
	}
	if layout == tpch.VBP {
		src = w.V
	} else {
		src = w.H
	}
	switch agg {
	case bench.AggSum:
		return func() { nbp.Sum(src, w.F) }
	case bench.AggMinMax:
		return func() { nbp.Min(src, w.F) }
	default:
		return func() { nbp.Median(src, w.F) }
	}
}

// BenchmarkFig5 reproduces Figure 5: aggregation cost of both methods
// across filter selectivities (k=25, single thread).
func BenchmarkFig5(b *testing.B) {
	for _, sel := range []float64{0.01, 0.1, 0.5, 1.0} {
		w := workload(benchN, 25, sel)
		for _, c := range aggCases {
			b.Run(fmt.Sprintf("%v/%v/sel=%.2f/NBP", c.layout, c.agg, sel), func(b *testing.B) {
				benchOp(b, w.N, nbpRunner(w, c.layout, c.agg))
			})
			b.Run(fmt.Sprintf("%v/%v/sel=%.2f/BP", c.layout, c.agg, sel), func(b *testing.B) {
				benchOp(b, w.N, bpRunner(w, c.layout, c.agg, parallel.Options{}))
			})
		}
	}
}

// BenchmarkFig6 reproduces Figure 6: aggregation cost across value widths
// (selectivity 0.1, single thread).
func BenchmarkFig6(b *testing.B) {
	for _, k := range []int{2, 10, 25, 50} {
		w := workload(benchN, k, 0.1)
		for _, c := range aggCases {
			b.Run(fmt.Sprintf("%v/%v/k=%d/NBP", c.layout, c.agg, k), func(b *testing.B) {
				benchOp(b, w.N, nbpRunner(w, c.layout, c.agg))
			})
			b.Run(fmt.Sprintf("%v/%v/k=%d/BP", c.layout, c.agg, k), func(b *testing.B) {
				benchOp(b, w.N, bpRunner(w, c.layout, c.agg, parallel.Options{}))
			})
		}
	}
}

// BenchmarkFig7 reproduces Figure 7: aggregation cost across data sizes
// (k=25, selectivity 0.1, single thread). Linear scaling shows as constant
// ns/tuple.
func BenchmarkFig7(b *testing.B) {
	for _, mult := range []int{1, 2, 4} {
		n := benchN * mult
		w := workload(n, 25, 0.1)
		for _, c := range aggCases {
			b.Run(fmt.Sprintf("%v/%v/n=%dM/NBP", c.layout, c.agg, n>>20), func(b *testing.B) {
				benchOp(b, w.N, nbpRunner(w, c.layout, c.agg))
			})
			b.Run(fmt.Sprintf("%v/%v/n=%dM/BP", c.layout, c.agg, n>>20), func(b *testing.B) {
				benchOp(b, w.N, bpRunner(w, c.layout, c.agg, parallel.Options{}))
			})
		}
	}
}

// BenchmarkFig8 reproduces Figure 8: bit-parallel aggregation under
// multi-threading (MT), 256-bit wide words (SIMD stand-in), and both.
// Compare against the serial rows to obtain the speedup bars.
func BenchmarkFig8(b *testing.B) {
	w := workload(benchN, 25, 0.1)
	modes := []struct {
		name string
		opts parallel.Options
	}{
		{"serial", parallel.Options{}},
		{"MT", parallel.Options{Threads: 4}},
		{"SIMD", parallel.Options{Wide: true}},
		{"MT+SIMD", parallel.Options{Threads: 4, Wide: true}},
	}
	for _, c := range aggCases {
		for _, m := range modes {
			b.Run(fmt.Sprintf("%v/%v/%s", c.layout, c.agg, m.name), func(b *testing.B) {
				benchOp(b, w.N, bpRunner(w, c.layout, c.agg, m.opts))
			})
		}
	}
}

var (
	tpchMu    sync.Mutex
	tpchCache = map[string]*tpchFixture{}
)

type tpchFixture struct {
	inst *tpch.Instance
	f    *bitvec.Bitmap
}

func tpchInstance(q tpch.Query, layout tpch.Layout, n int) *tpchFixture {
	tpchMu.Lock()
	defer tpchMu.Unlock()
	key := fmt.Sprintf("%s/%v/%d", q.Name, layout, n)
	fx, ok := tpchCache[key]
	if !ok {
		inst := tpch.Build(q, layout, n, 1)
		fx = &tpchFixture{inst: inst, f: inst.Scan()}
		tpchCache[key] = fx
	}
	return fx
}

// BenchmarkTable2 reproduces Table II: per-query bit-parallel scan cost and
// aggregation cost under both methods, per layout.
func BenchmarkTable2(b *testing.B) {
	const n = 1 << 19
	for _, layout := range []tpch.Layout{tpch.VBP, tpch.HBP} {
		for _, q := range tpch.Queries() {
			fx := tpchInstance(q, layout, n)
			b.Run(fmt.Sprintf("%v/%s/scan", layout, q.Name), func(b *testing.B) {
				benchOp(b, n, func() { fx.inst.Scan() })
			})
			b.Run(fmt.Sprintf("%v/%s/aggNBP", layout, q.Name), func(b *testing.B) {
				benchOp(b, n, func() { fx.inst.RunAggNBP(fx.f, nbp.Options{}) })
			})
			b.Run(fmt.Sprintf("%v/%s/aggBP", layout, q.Name), func(b *testing.B) {
				benchOp(b, n, func() { fx.inst.RunAggBP(fx.f, parallel.Options{}) })
			})
		}
	}
}

// BenchmarkScan measures the filter-scan substrate on its own: the cost a
// query pays before aggregation starts (BitWeaving's result, included for
// context).
func BenchmarkScan(b *testing.B) {
	w := workload(benchN, 25, 0.1)
	p := scan.Predicate{Op: scan.LT, A: 1 << 22}
	b.Run("VBP/less-than", func(b *testing.B) {
		benchOp(b, w.N, func() { scan.VBP(w.V, p) })
	})
	b.Run("HBP/less-than", func(b *testing.B) {
		benchOp(b, w.N, func() { scan.HBP(w.H, p) })
	})
}

// BenchmarkFacade measures the public API end to end: scan + sum through
// Column, the path applications actually call.
func BenchmarkFacade(b *testing.B) {
	vals := make([]uint64, benchN)
	for i := range vals {
		vals[i] = uint64(i) & ((1 << 25) - 1)
	}
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		col := bpagg.FromValues(layout, 25, vals)
		b.Run(fmt.Sprintf("%v/scan+sum", layout), func(b *testing.B) {
			benchOp(b, benchN, func() {
				sel := col.Scan(bpagg.Less(1 << 22))
				col.Sum(sel)
			})
		})
	}
}
