package bpagg

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"bpagg/internal/parallel"
)

// ShardedQuery is a conjunctive filter plus aggregation over a
// ShardedTable — the partitioned twin of Query. Execution fans out over
// the shards the catalog cannot prune (min/max bounds checked per clause,
// recorded as ShardsScanned/ShardsPruned), runs an ordinary per-shard
// Query on each — so the existing zone pruning, fused pipelines, and
// aggregate caches all apply within a shard — and merges the per-shard
// results in shard order. Merges are order-insensitive (sums accumulate
// in 128 bits, extremes compare, ranks binary-search on merged counts),
// so every result is bit-identical to the flat engine at any thread
// count.
type ShardedQuery struct {
	st      *ShardedTable
	clauses []shardClause
	execs   []ExecOption
	stats   *StatsCollector
	scratch shardScratch
}

// shardScratch holds the per-shard merge buffers, reused across a
// query's fan-outs: window sweeps and rank binary searches issue one
// fan-out per window or probe step and would otherwise reallocate the
// same small slices every time. A ShardedQuery (like Query) serves one
// goroutine at a time, and within one fan-out each worker writes only
// its own slot, so reuse is safe.
type shardScratch struct {
	live, rlo, rhi []int
	u64            [3][]uint64
	oks            []bool
}

// uints returns one of the scratch's zeroed uint64 buffers at length n.
func (s *shardScratch) uints(slot, n int) []uint64 {
	b := s.u64[slot]
	if cap(b) < n {
		b = make([]uint64, n)
		s.u64[slot] = b
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// bools returns the scratch's zeroed bool buffer at length n.
func (s *shardScratch) bools(n int) []bool {
	if cap(s.oks) < n {
		s.oks = make([]bool, n)
	}
	b := s.oks[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// shardClause is one recorded WHERE conjunct: the column (by name and
// specs index, for the shard catalog) and its predicate.
type shardClause struct {
	name string
	col  int
	pred Predicate
}

// Query starts a query over the partitioned store.
func (st *ShardedTable) Query() *ShardedQuery {
	return &ShardedQuery{st: st}
}

// Where adds a conjunctive predicate on the named column. Like
// Query.Where it validates eagerly (unknown columns and oversized
// constants panic) and executes lazily at the next aggregate.
func (q *ShardedQuery) Where(column string, p Predicate) *ShardedQuery {
	idx := q.st.spec(column)
	if idx < 0 {
		panic(fmt.Sprintf("bpagg: unknown column %q", column))
	}
	checkPredFits(p, q.st.specs[idx].bits)
	q.clauses = append(q.clauses, shardClause{name: column, col: idx, pred: p})
	return q
}

// WhereErr is the error-returning twin of Where.
func (q *ShardedQuery) WhereErr(column string, p Predicate) (*ShardedQuery, error) {
	idx := q.st.spec(column)
	if idx < 0 {
		return nil, fmt.Errorf("bpagg: unknown column %q", column)
	}
	if !p.fits(q.st.specs[idx].bits) {
		return nil, fmt.Errorf("bpagg: predicate constant does not fit in %d bits", q.st.specs[idx].bits)
	}
	q.clauses = append(q.clauses, shardClause{name: column, col: idx, pred: p})
	return q, nil
}

// With sets execution options (Parallel, WideWords) for the aggregates.
// Parallel(n) governs both the shard fan-out width and each per-shard
// query's intra-shard parallelism.
func (q *ShardedQuery) With(opts ...ExecOption) *ShardedQuery {
	q.execs = append(q.execs, opts...)
	return q
}

// WithStats enables per-query statistics collection, including the shard
// counters: every fan-out records how many shards the catalog pruned and
// how many were scanned, and the per-shard queries record their scan and
// aggregate counters into the same collector.
func (q *ShardedQuery) WithStats() *ShardedQuery {
	if q.stats == nil {
		q.stats = NewStatsCollector()
	}
	return q
}

// WithStatsInto directs the query's statistics into a caller-supplied
// collector.
func (q *ShardedQuery) WithStatsInto(rec *StatsCollector) *ShardedQuery {
	if rec != nil {
		q.stats = rec
	}
	return q
}

// Stats returns a snapshot of the counters collected so far; zero when
// stats were not enabled.
func (q *ShardedQuery) Stats() ExecStats {
	return q.stats.Snapshot()
}

// plan runs shard pruning: it returns the indices of the shards whose
// catalog bounds can satisfy every clause (plus any probe clauses), in
// shard order, and records ShardsScanned/ShardsPruned. A column with no
// non-NULL value in a shard prunes that shard for any predicate, since a
// scan never matches NULL.
func (q *ShardedQuery) plan(extra []shardClause) []int {
	live := q.scratch.live[:0]
shards:
	for s := range q.st.shards {
		for _, cls := range [][]shardClause{q.clauses, extra} {
			for _, cl := range cls {
				b := q.st.bounds[s][cl.col]
				if !b.any || !cl.pred.mayMatch(b.min, b.max) {
					continue shards
				}
			}
		}
		live = append(live, s)
	}
	q.stats.Record(ExecStats{
		ShardsScanned: uint64(len(live)),
		ShardsPruned:  uint64(len(q.st.shards) - len(live)),
	})
	q.scratch.live = live
	return live
}

// runShards executes fn once per live shard through the parallel index
// fan-out. fn receives its slot in the live list (for deterministic
// result placement), the shard index, and a fresh per-shard Query
// carrying the recorded clauses, probe clauses, exec options, and stats
// collector.
func (q *ShardedQuery) runShards(ctx context.Context, live []int, extra []shardClause,
	fn func(slot, shard int, sq *Query) error) error {
	threads := execOptions(q.execs).par.Threads
	err := parallel.ForEachIndexErr(orBackground(ctx), len(live), threads, func(i int) error {
		sq := q.st.shards[live[i]].Query().With(q.execs...)
		if q.stats != nil {
			sq.WithStatsInto(q.stats)
		}
		for _, cl := range q.clauses {
			sq.Where(cl.name, cl.pred)
		}
		for _, cl := range extra {
			sq.Where(cl.name, cl.pred)
		}
		return fn(i, live[i], sq)
	})
	return wrapExecErr(err)
}

// specIdxErr resolves an aggregate target column, as an error.
func (q *ShardedQuery) specIdxErr(column string) (int, error) {
	idx := q.st.spec(column)
	if idx < 0 {
		return -1, fmt.Errorf("bpagg: unknown column %q", column)
	}
	return idx, nil
}

// CountRowsContext counts the rows passing the filter (COUNT(*)),
// honoring ctx.
func (q *ShardedQuery) CountRowsContext(ctx context.Context) (uint64, error) {
	live := q.plan(nil)
	counts := q.scratch.uints(0, len(live))
	err := q.runShards(ctx, live, nil, func(slot, _ int, sq *Query) error {
		c, err := sq.CountRowsContext(ctx)
		counts[slot] = c
		return err
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// CountRows returns the number of rows passing the filter.
func (q *ShardedQuery) CountRows() uint64 {
	c, err := q.CountRowsContext(context.Background())
	fusedMust(err)
	return c
}

// CountContext counts selected non-NULL rows of the named column.
func (q *ShardedQuery) CountContext(ctx context.Context, column string) (uint64, error) {
	if _, err := q.specIdxErr(column); err != nil {
		return 0, err
	}
	live := q.plan(nil)
	counts := q.scratch.uints(0, len(live))
	err := q.runShards(ctx, live, nil, func(slot, _ int, sq *Query) error {
		c, err := sq.CountContext(ctx, column)
		counts[slot] = c
		return err
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Count counts selected non-NULL rows of the named column.
func (q *ShardedQuery) Count(column string) uint64 {
	c, err := q.CountContext(context.Background(), column)
	fusedMust(err)
	return c
}

// sumParts collects each live shard's 128-bit SUM partial. A shard whose
// own partial overflows uint64 reports it as an *OverflowError carrying
// the exact 128-bit value, which merges like any other partial — so the
// merged total (and any merged overflow report) is exact.
func (q *ShardedQuery) sumParts(ctx context.Context, column string) (hi, lo uint64, err error) {
	live := q.plan(nil)
	his := q.scratch.uints(0, len(live))
	los := q.scratch.uints(1, len(live))
	err = q.runShards(ctx, live, nil, func(slot, _ int, sq *Query) error {
		v, err := sq.SumContext(ctx, column)
		if err != nil {
			var ov *OverflowError
			if errors.As(err, &ov) {
				his[slot], los[slot] = ov.Hi, ov.Lo
				return nil
			}
			return err
		}
		los[slot] = v
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for i := range los {
		var carry uint64
		lo, carry = bits.Add64(lo, los[i], 0)
		hi += his[i] + carry
	}
	return hi, lo, nil
}

// SumContext aggregates SUM over the named column, honoring ctx. A total
// exceeding uint64 returns an *OverflowError carrying the exact 128-bit
// sum, matching the flat engine's overflow contract.
func (q *ShardedQuery) SumContext(ctx context.Context, column string) (uint64, error) {
	if _, err := q.specIdxErr(column); err != nil {
		return 0, err
	}
	hi, lo, err := q.sumParts(ctx, column)
	if err != nil {
		return 0, err
	}
	if hi != 0 {
		return 0, &OverflowError{Hi: hi, Lo: lo}
	}
	return lo, nil
}

// Sum aggregates SUM over the named column.
func (q *ShardedQuery) Sum(column string) uint64 {
	v, err := q.SumContext(context.Background(), column)
	fusedMust(err)
	return v
}

// SumCountContext aggregates SUM and COUNT over the named column in one
// fan-out.
func (q *ShardedQuery) SumCountContext(ctx context.Context, column string) (sum, cnt uint64, err error) {
	if _, err := q.specIdxErr(column); err != nil {
		return 0, 0, err
	}
	live := q.plan(nil)
	his := q.scratch.uints(0, len(live))
	los := q.scratch.uints(1, len(live))
	cnts := q.scratch.uints(2, len(live))
	err = q.runShards(ctx, live, nil, func(slot, _ int, sq *Query) error {
		s, c, err := sq.SumCountContext(ctx, column)
		if err != nil {
			var ov *OverflowError
			if errors.As(err, &ov) {
				his[slot], los[slot] = ov.Hi, ov.Lo
				return nil
			}
			return err
		}
		los[slot], cnts[slot] = s, c
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	var hi uint64
	for i := range los {
		var carry uint64
		sum, carry = bits.Add64(sum, los[i], 0)
		hi += his[i] + carry
		cnt += cnts[i]
	}
	if hi != 0 {
		return 0, 0, &OverflowError{Hi: hi, Lo: sum}
	}
	return sum, cnt, nil
}

// extremeContext merges per-shard MIN/MAX partials.
func (q *ShardedQuery) extremeContext(ctx context.Context, column string, wantMin bool) (uint64, bool, error) {
	if _, err := q.specIdxErr(column); err != nil {
		return 0, false, err
	}
	live := q.plan(nil)
	vals := q.scratch.uints(0, len(live))
	oks := q.scratch.bools(len(live))
	err := q.runShards(ctx, live, nil, func(slot, _ int, sq *Query) error {
		var v uint64
		var ok bool
		var err error
		if wantMin {
			v, ok, err = sq.MinContext(ctx, column)
		} else {
			v, ok, err = sq.MaxContext(ctx, column)
		}
		vals[slot], oks[slot] = v, ok
		return err
	})
	if err != nil {
		return 0, false, err
	}
	var best uint64
	found := false
	for i, ok := range oks {
		if !ok {
			continue
		}
		if !found || (wantMin && vals[i] < best) || (!wantMin && vals[i] > best) {
			best = vals[i]
		}
		found = true
	}
	return best, found, nil
}

// MinContext aggregates MIN over the named column, honoring ctx.
func (q *ShardedQuery) MinContext(ctx context.Context, column string) (uint64, bool, error) {
	return q.extremeContext(ctx, column, true)
}

// MaxContext aggregates MAX over the named column, honoring ctx.
func (q *ShardedQuery) MaxContext(ctx context.Context, column string) (uint64, bool, error) {
	return q.extremeContext(ctx, column, false)
}

// Min aggregates MIN over the named column.
func (q *ShardedQuery) Min(column string) (uint64, bool) {
	v, ok, err := q.MinContext(context.Background(), column)
	fusedMust(err)
	return v, ok
}

// Max aggregates MAX over the named column.
func (q *ShardedQuery) Max(column string) (uint64, bool) {
	v, ok, err := q.MaxContext(context.Background(), column)
	fusedMust(err)
	return v, ok
}

// AvgContext aggregates AVG over the named column, honoring ctx.
func (q *ShardedQuery) AvgContext(ctx context.Context, column string) (float64, bool, error) {
	sum, cnt, err := q.SumCountContext(ctx, column)
	if err != nil {
		return 0, false, err
	}
	if cnt == 0 {
		return 0, false, nil
	}
	return float64(sum) / float64(cnt), true, nil
}

// Avg aggregates AVG over the named column.
func (q *ShardedQuery) Avg(column string) (float64, bool) {
	v, ok, err := q.AvgContext(context.Background(), column)
	fusedMust(err)
	return v, ok
}

// maxValForBits returns the largest value representable in k bits.
func maxValForBits(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(k) - 1
}

// countLE counts selected rows whose column value is <= v, fanning out
// with the probe clause included in shard pruning — a probe below every
// shard bound scans nothing.
func (q *ShardedQuery) countLE(ctx context.Context, column string, idx int, v uint64) (uint64, error) {
	extra := []shardClause{{name: column, col: idx, pred: LessEq(v)}}
	live := q.plan(extra)
	counts := q.scratch.uints(0, len(live))
	err := q.runShards(ctx, live, extra, func(slot, _ int, sq *Query) error {
		c, err := sq.CountRowsContext(ctx)
		counts[slot] = c
		return err
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// rankSearch finds the r-th smallest selected value by binary search on
// the value domain: the answer is the smallest v with countLE(v) >= r,
// which always is an actually-present value. Each probe is one counting
// fan-out, so the search costs O(k) fan-outs — the sharded analogue of
// the radix descent's k rendezvous rounds.
func (q *ShardedQuery) rankSearch(ctx context.Context, column string,
	rankOf func(uint64) (uint64, bool)) (uint64, bool, error) {
	idx, err := q.specIdxErr(column)
	if err != nil {
		return 0, false, err
	}
	u, err := q.CountContext(ctx, column)
	if err != nil {
		return 0, false, err
	}
	r, ok := rankOf(u)
	if !ok || r < 1 || r > u {
		return 0, false, nil
	}
	lo, hi := uint64(0), maxValForBits(q.st.specs[idx].bits)
	for lo < hi {
		mid := lo + (hi-lo)/2
		cnt, err := q.countLE(ctx, column, idx, mid)
		if err != nil {
			return 0, false, err
		}
		if cnt >= r {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true, nil
}

// MedianContext aggregates the lower MEDIAN over the named column,
// honoring ctx.
func (q *ShardedQuery) MedianContext(ctx context.Context, column string) (uint64, bool, error) {
	return q.rankSearch(ctx, column, medianRank)
}

// Median aggregates the lower MEDIAN over the named column.
func (q *ShardedQuery) Median(column string) (uint64, bool) {
	v, ok, err := q.MedianContext(context.Background(), column)
	fusedMust(err)
	return v, ok
}

// RankContext returns the r-th smallest selected value of the named
// column, honoring ctx.
func (q *ShardedQuery) RankContext(ctx context.Context, column string, r uint64) (uint64, bool, error) {
	return q.rankSearch(ctx, column, func(uint64) (uint64, bool) { return r, true })
}

// Rank returns the r-th smallest selected value of the named column.
func (q *ShardedQuery) Rank(column string, r uint64) (uint64, bool) {
	v, ok, err := q.RankContext(context.Background(), column, r)
	fusedMust(err)
	return v, ok
}

// QuantileContext returns the quantile-q value of the named column,
// honoring ctx.
func (q *ShardedQuery) QuantileContext(ctx context.Context, column string, quantile float64) (uint64, bool, error) {
	if quantile < 0 || quantile > 1 || quantile != quantile {
		return 0, false, fmt.Errorf("bpagg: quantile %v outside [0,1]", quantile)
	}
	return q.rankSearch(ctx, column, quantileRank(quantile))
}

// Quantile returns the q-quantile (nearest rank) of the named column.
func (q *ShardedQuery) Quantile(column string, quantile float64) (uint64, bool) {
	if quantile < 0 || quantile > 1 {
		panic(fmt.Sprintf("bpagg: quantile %v outside [0,1]", quantile))
	}
	v, ok, err := q.QuantileContext(context.Background(), column, quantile)
	fusedMust(err)
	return v, ok
}
