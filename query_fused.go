package bpagg

import (
	"context"
	"errors"
	"fmt"

	"bpagg/internal/parallel"
	"bpagg/internal/scan"
	"bpagg/internal/vbp"
)

// Fused query planning. Where clauses are recorded lazily (see table.go);
// when an aggregate runs before the selection is materialized, the planner
// checks whether the whole query — predicate conjunction plus aggregate —
// can execute as one fused segment-at-a-time pass, in which case the
// filter bitmap is never built: each segment's filter word goes straight
// from the scan lanes into the aggregate kernel, and all-match segments
// are answered from the per-segment aggregate caches.
//
// Fusion contract (DESIGN.md §10): a query fuses iff
//   - the selection has not been materialized (no Selection() call and no
//     arbitrary user bitmap) and there is at least one Where clause;
//   - every clause is a simple comparison (IN-lists run as unions of
//     equality scans and need a bitmap);
//   - neither the clause columns nor the aggregate column have NULLs
//     (NULL semantics live in the validity-bitmap intersection);
//   - execution is the bit-parallel access method (Reconstruct/Auto fall
//     back to two phases; WideWords fuses too — internal/wide carries
//     fused twins of the SUM and MIN/MAX kernels and wide rank rounds);
//   - all columns involved agree on the window width (VBP's 64, HBP's
//     values-per-segment), so one filter word addresses one segment
//     everywhere.
// Anything else falls back to the two-phase path, which remains the
// general executor. Results are bit-identical either way.

// whereClause is one recorded conjunct of a query's WHERE.
type whereClause struct {
	name string
	col  *Column
	pred Predicate
}

// fits reports whether every constant of the predicate fits the column's
// k bits — the same validation the scans enforce, applied at clause
// registration so lazy evaluation fails at the same point eager did.
func (p Predicate) fits(k int) bool {
	if p.list != nil {
		for _, v := range p.list {
			if !(scan.Predicate{Op: scan.EQ, A: v}).Fits(k) {
				return false
			}
		}
		return true
	}
	return p.p.Fits(k)
}

// windowBits returns the column's fused-window width in tuples.
func (c *Column) windowBits() int {
	if c.layout == VBP {
		return vbp.SegBits
	}
	return c.h.ValuesPerSegment()
}

// fusedPlan decides whether the query's clauses and the aggregate column
// (nil for row counting) can run fused, and builds the per-window
// predicate evaluators if so.
func (q *Query) fusedPlan(agg *Column) (preds []scan.WindowPred, o execConfig, ok bool) {
	if q.sel != nil || len(q.clauses) == 0 {
		return nil, o, false
	}
	o = execOptions(q.execs)
	if o.access != BitParallel {
		return nil, o, false
	}
	wb := 0
	if agg != nil {
		if agg.nulls != nil {
			return nil, o, false
		}
		wb = agg.windowBits()
	}
	preds = make([]scan.WindowPred, 0, len(q.clauses))
	for _, cl := range q.clauses {
		if cl.pred.list != nil || cl.col.nulls != nil {
			return nil, o, false
		}
		cwb := cl.col.windowBits()
		if wb == 0 {
			wb = cwb
		} else if cwb != wb {
			return nil, o, false
		}
		if cl.col.layout == VBP {
			preds = append(preds, scan.NewVBPWindowPred(cl.col.v, cl.pred.p))
		} else {
			preds = append(preds, scan.NewHBPWindowPred(cl.col.h, cl.pred.p))
		}
	}
	return preds, o, true
}

// fusedMust re-raises a fused-path failure on the plain (non-Context)
// query methods, preserving their contract that worker panics propagate
// with the original panic value.
func fusedMust(err error) {
	if err == nil {
		return
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		panic(pe.Value)
	}
	panic(err)
}

// fusedSum runs the fused SUM+COUNT driver for the column's layout.
func (c *Column) fusedSum(ctx context.Context, preds []scan.WindowPred, o execConfig) (sum, cnt uint64, err error) {
	if c.layout == VBP {
		sum, cnt, err = parallel.VBPFusedSumCtx(ctx, c.v, preds, o.par)
	} else {
		sum, cnt, err = parallel.HBPFusedSumCtx(ctx, c.h, preds, o.par)
	}
	return sum, cnt, wrapExecErr(err)
}

// fusedExtreme runs the fused MIN/MAX driver; cnt == 0 means nothing
// matched.
func (c *Column) fusedExtreme(ctx context.Context, preds []scan.WindowPred, o execConfig, wantMin bool) (v, cnt uint64, err error) {
	if c.layout == VBP {
		v, cnt, err = parallel.VBPFusedExtremeCtx(ctx, c.v, preds, o.par, wantMin)
	} else {
		v, cnt, err = parallel.HBPFusedExtremeCtx(ctx, c.h, preds, o.par, wantMin)
	}
	return v, cnt, wrapExecErr(err)
}

// fusedRank runs the fused rank driver; rankOf maps the selected tuple
// count to the wanted 1-based rank.
func (c *Column) fusedRank(ctx context.Context, preds []scan.WindowPred, o execConfig, rankOf func(u uint64) (uint64, bool)) (v, cnt uint64, ok bool, err error) {
	if c.layout == VBP {
		v, cnt, ok, err = parallel.VBPFusedRankCtx(ctx, c.v, preds, rankOf, o.par)
	} else {
		v, cnt, ok, err = parallel.HBPFusedRankCtx(ctx, c.h, preds, rankOf, o.par)
	}
	return v, cnt, ok, wrapExecErr(err)
}

// fusedCount counts matching rows with the first clause's column driving
// the windows (every eligible column shares the window geometry).
func (q *Query) fusedCount(ctx context.Context, preds []scan.WindowPred, o execConfig) (uint64, error) {
	c := q.clauses[0].col
	var (
		cnt uint64
		err error
	)
	if c.layout == VBP {
		cnt, err = parallel.VBPFusedCountCtx(ctx, c.v, preds, o.par)
	} else {
		cnt, err = parallel.HBPFusedCountCtx(ctx, c.h, preds, o.par)
	}
	return cnt, wrapExecErr(err)
}

// medianRank is the lower-median rank function for the fused rank driver.
func medianRank(u uint64) (uint64, bool) { return (u + 1) / 2, u > 0 }

// quantileRank returns the nearest-rank function for quantile q in [0,1].
func quantileRank(q float64) func(u uint64) (uint64, bool) {
	return func(u uint64) (uint64, bool) {
		if u == 0 {
			return 0, false
		}
		r := uint64(float64(u)*q + 0.999999999)
		if r == 0 {
			r = 1
		}
		if r > u {
			r = u
		}
		return r, true
	}
}

// WithStatsInto directs the query's statistics into a caller-supplied
// collector (which may be shared across queries) instead of a fresh one.
// Stats then reports that collector's running totals.
func (q *Query) WithStatsInto(rec *StatsCollector) *Query {
	if rec == nil {
		return q
	}
	q.stats = rec
	q.execs = append(q.execs, CollectStats(rec))
	return q
}

// SumCountContext aggregates SUM and COUNT over the named column in one
// pass when the query fuses (the natural shape for AVG and for SQL
// formatters that need both), falling back to a SUM plus a popcount.
func (q *Query) SumCountContext(ctx context.Context, column string) (sum, cnt uint64, err error) {
	col, err := q.colErr(column)
	if err != nil {
		return 0, 0, err
	}
	if preds, o, ok := q.fusedPlan(col); ok {
		return col.fusedSum(orBackground(ctx), preds, o)
	}
	sum, err = col.SumContext(ctx, q.Selection(), q.execs...)
	if err != nil {
		return 0, 0, err
	}
	cnt, err = col.CountContext(ctx, q.Selection())
	return sum, cnt, err
}

// Fused reports whether the next aggregate call would run the fused
// scan→aggregate path for the named column (EXPLAIN support); the empty
// string asks about row counting (COUNT(*)), which has no aggregate
// column. It never materializes the selection.
func (q *Query) Fused(column string) bool {
	var col *Column
	if column != "" {
		col = q.t.cols[column]
		if col == nil {
			return false
		}
	}
	_, _, ok := q.fusedPlan(col)
	return ok
}

func checkPredFits(p Predicate, k int) {
	if !p.fits(k) {
		panic(fmt.Sprintf("scan: predicate constant does not fit in %d bits", k))
	}
}
