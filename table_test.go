package bpagg

import (
	"math/rand"
	"testing"
)

func buildOrdersTable(t *testing.T, n int) (*Table, []uint64, []uint64, []uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	price := make([]uint64, n)
	qty := make([]uint64, n)
	region := make([]uint64, n)
	for i := 0; i < n; i++ {
		price[i] = uint64(rng.Intn(1 << 16))
		qty[i] = uint64(rng.Intn(50) + 1)
		region[i] = uint64(rng.Intn(5))
	}
	tbl := NewTable()
	tbl.AddColumn("price", VBP, 16)
	tbl.AddColumn("qty", HBP, 6)
	tbl.AddColumn("region", VBP, 3)
	tbl.AppendColumnar(map[string][]uint64{
		"price": price, "qty": qty, "region": region,
	})
	return tbl, price, qty, region
}

func TestTableQueryEndToEnd(t *testing.T) {
	const n = 2000
	tbl, price, qty, region := buildOrdersTable(t, n)
	if tbl.Rows() != n {
		t.Fatalf("Rows = %d", tbl.Rows())
	}

	// SELECT SUM(qty), COUNT(*), MEDIAN(price) WHERE price < 30000 AND region = 2
	q := tbl.Query().Where("price", Less(30000)).Where("region", Equal(2))
	var wantSum, wantCount uint64
	var keptPrices []uint64
	for i := 0; i < n; i++ {
		if price[i] < 30000 && region[i] == 2 {
			wantSum += qty[i]
			wantCount++
			keptPrices = append(keptPrices, price[i])
		}
	}
	if got := q.CountRows(); got != wantCount {
		t.Fatalf("CountRows = %d, want %d", got, wantCount)
	}
	if got := q.Sum("qty"); got != wantSum {
		t.Fatalf("Sum(qty) = %d, want %d", got, wantSum)
	}
	med, ok := q.Median("price")
	if !ok {
		t.Fatal("Median not ok")
	}
	// Verify by counting how many kept prices are below/at the median.
	var below, atOrBelow uint64
	for _, p := range keptPrices {
		if p < med {
			below++
		}
		if p <= med {
			atOrBelow++
		}
	}
	r := (wantCount + 1) / 2
	if below >= r || atOrBelow < r {
		t.Fatalf("median %d has rank window (%d, %d], want to contain %d", med, below, atOrBelow, r)
	}
}

func TestTableQueryNoFilter(t *testing.T) {
	tbl, price, _, _ := buildOrdersTable(t, 500)
	var want uint64
	for _, p := range price {
		want += p
	}
	if got := tbl.Query().Sum("price"); got != want {
		t.Fatalf("unfiltered Sum = %d, want %d", got, want)
	}
	if got := tbl.Query().CountRows(); got != 500 {
		t.Fatalf("unfiltered CountRows = %d", got)
	}
}

func TestTableQueryWithExecOptions(t *testing.T) {
	tbl, _, _, _ := buildOrdersTable(t, 3000)
	base := tbl.Query().Where("price", Less(40000)).Sum("qty")
	got := tbl.Query().Where("price", Less(40000)).With(Parallel(4), WideWords()).Sum("qty")
	if got != base {
		t.Fatalf("parallel+wide Sum = %d, want %d", got, base)
	}
}

func TestTableAppendRow(t *testing.T) {
	tbl := NewTable()
	tbl.AddColumn("a", VBP, 8)
	tbl.AddColumn("b", HBP, 8)
	tbl.AppendRow(map[string]uint64{"a": 1, "b": 2})
	tbl.AppendRow(map[string]uint64{"a": 3, "b": 4})
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	if got := tbl.Query().Sum("a"); got != 4 {
		t.Errorf("Sum(a) = %d", got)
	}
	if got := tbl.Query().Sum("b"); got != 6 {
		t.Errorf("Sum(b) = %d", got)
	}
	cols := tbl.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("Columns = %v", cols)
	}
}

func TestTableMinMaxAvgRankQuantile(t *testing.T) {
	tbl := NewTable()
	tbl.AddColumn("v", HBP, 8)
	tbl.AppendColumnar(map[string][]uint64{"v": {10, 20, 30, 40, 50}})
	q := tbl.Query().Where("v", Greater(10))
	if got, ok := q.Min("v"); !ok || got != 20 {
		t.Errorf("Min = (%d,%v)", got, ok)
	}
	if got, ok := q.Max("v"); !ok || got != 50 {
		t.Errorf("Max = (%d,%v)", got, ok)
	}
	if got, ok := tbl.Query().Where("v", Greater(10)).Avg("v"); !ok || got != 35 {
		t.Errorf("Avg = (%v,%v)", got, ok)
	}
	if got, ok := tbl.Query().Where("v", Greater(10)).Rank("v", 2); !ok || got != 30 {
		t.Errorf("Rank(2) = (%d,%v)", got, ok)
	}
	if got, ok := tbl.Query().Where("v", Greater(10)).Quantile("v", 1); !ok || got != 50 {
		t.Errorf("Quantile(1) = (%d,%v)", got, ok)
	}
}

func TestTablePanics(t *testing.T) {
	check := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	tbl := NewTable()
	tbl.AddColumn("a", VBP, 8)
	check("duplicate column", func() { tbl.AddColumn("a", VBP, 8) })
	check("unknown Where column", func() { tbl.Query().Where("zzz", Equal(1)) })
	check("unknown agg column", func() { tbl.Query().Sum("zzz") })
	check("short row", func() { tbl.AppendRow(map[string]uint64{}) })
	check("wrong row key", func() { tbl.AppendRow(map[string]uint64{"b": 1}) })
	tbl.AppendRow(map[string]uint64{"a": 1})
	check("AddColumn after rows", func() { tbl.AddColumn("late", VBP, 8) })
	check("ragged columnar load", func() {
		t2 := NewTable()
		t2.AddColumn("x", VBP, 8)
		t2.AddColumn("y", VBP, 8)
		t2.AppendColumnar(map[string][]uint64{"x": {1}, "y": {1, 2}})
	})
}

func TestCodecs(t *testing.T) {
	d := Decimal{Scale: 2, Max: 104999.99}
	if d.Bits() != 24 {
		t.Errorf("Decimal bits = %d, want 24 (the paper's l_extendedprice)", d.Bits())
	}
	if d.Decode(d.Encode(95.5)) != 95.5 {
		t.Error("Decimal round trip failed")
	}
	if d.DecodeSum(d.Encode(1.25)+d.Encode(2.50)) != 3.75 {
		t.Error("DecodeSum failed")
	}

	s := Signed{Min: -100, Max: 100}
	if s.Bits() != 8 {
		t.Errorf("Signed bits = %d", s.Bits())
	}
	if s.Decode(s.Encode(-37)) != -37 {
		t.Error("Signed round trip failed")
	}
	if s.DecodeSum(s.Encode(-5)+s.Encode(10), 2) != 5 {
		t.Error("Signed DecodeSum failed")
	}

	dict := NewDict()
	for _, k := range []string{"URGENT", "HIGH", "MEDIUM", "LOW"} {
		dict.Add(k)
	}
	dict.Freeze()
	if dict.Bits() != 2 {
		t.Errorf("Dict bits = %d", dict.Bits())
	}
	c1, ok1 := dict.Encode("HIGH")
	c2, ok2 := dict.Encode("LOW")
	if !ok1 || !ok2 || c1 >= c2 { // lexicographic: HIGH < LOW
		t.Errorf("Dict order broken: HIGH=%d LOW=%d", c1, c2)
	}
	if dict.Decode(c1) != "HIGH" {
		t.Error("Dict decode failed")
	}
	if _, ok := dict.Encode("NONE"); ok {
		t.Error("unknown key should not encode")
	}
	if BitsFor(0) != 1 || BitsFor(255) != 8 || BitsFor(256) != 9 {
		t.Error("BitsFor wrong")
	}
}
