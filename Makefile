GO ?= go

.PHONY: build test vet race ci bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race target is the tier the hardened execution layer is held to:
# every parallel driver, the fault-injection hooks, and the cancellation
# paths run under the race detector.
race:
	$(GO) test -race ./...

ci: vet build test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...
