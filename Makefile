GO ?= go

.PHONY: build test vet race server-race ci bench bench-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race target is the tier the hardened execution layer is held to:
# every parallel driver, the fault-injection hooks, and the cancellation
# paths run under the race detector.
race:
	$(GO) test -race ./...

# server-race runs the bpaggd chaos suite (admission, deadlines, drain,
# shared-scan batching under injected faults) with the race detector and
# a hard wall-clock budget: a deadlock or goroutine leak fails as a
# timeout instead of hanging CI.
server-race:
	$(GO) test -race -timeout 60s -count=1 ./internal/server/...

ci: vet build test race server-race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-json runs the paper's experiment suite at a CI-friendly size and
# writes machine-readable results to BENCH_results.json (schema
# bpagg-bench/v1) — the perf trajectory artifact.
bench-json:
	$(GO) run ./cmd/bpagg-bench -n 1048576 -mintime 25ms -json

clean:
	$(GO) clean ./...
