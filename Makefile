GO ?= go

.PHONY: build test vet race ci bench bench-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race target is the tier the hardened execution layer is held to:
# every parallel driver, the fault-injection hooks, and the cancellation
# paths run under the race detector.
race:
	$(GO) test -race ./...

ci: vet build test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-json runs the paper's experiment suite at a CI-friendly size and
# writes machine-readable results to BENCH_results.json (schema
# bpagg-bench/v1) — the perf trajectory artifact.
bench-json:
	$(GO) run ./cmd/bpagg-bench -n 1048576 -mintime 25ms -json

clean:
	$(GO) clean ./...
