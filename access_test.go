package bpagg

import (
	"math/rand"
	"testing"
)

// TestAccessMethodsAgree pins the contract: every access method returns the
// same answer; only the evaluation strategy differs.
func TestAccessMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	const n, k = 8000, 14
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << k))
	}
	for _, layout := range []Layout{VBP, HBP} {
		col := FromValues(layout, k, vals)
		for _, sel := range []*Bitmap{
			col.Scan(Less(50)),      // very selective: Auto picks reconstruction
			col.Scan(Less(1 << 13)), // dense: Auto picks bit-parallel
			col.All(),
			col.None(),
		} {
			for _, m := range []AccessMethod{BitParallel, Reconstruct, Auto} {
				opt := Access(m)
				if got, want := col.Sum(sel, opt), col.Sum(sel); got != want {
					t.Fatalf("%v method %d: Sum = %d, want %d", layout, m, got, want)
				}
				gm, gok := col.Min(sel, opt)
				wm, wok := col.Min(sel)
				if gm != wm || gok != wok {
					t.Fatalf("%v method %d: Min = (%d,%v), want (%d,%v)", layout, m, gm, gok, wm, wok)
				}
				gm, gok = col.Max(sel, opt)
				wm, wok = col.Max(sel)
				if gm != wm || gok != wok {
					t.Fatalf("%v method %d: Max mismatch", layout, m)
				}
				gm, gok = col.Median(sel, opt)
				wm, wok = col.Median(sel)
				if gm != wm || gok != wok {
					t.Fatalf("%v method %d: Median = (%d,%v), want (%d,%v)", layout, m, gm, gok, wm, wok)
				}
				ga, gaok := col.Avg(sel, opt)
				wa, waok := col.Avg(sel)
				if ga != wa || gaok != waok {
					t.Fatalf("%v method %d: Avg mismatch", layout, m)
				}
				u := col.Count(sel)
				for _, r := range []uint64{1, u / 2, u} {
					if r == 0 {
						continue
					}
					gr, grok := col.Rank(sel, r, opt)
					wr, wrok := col.Rank(sel, r)
					if gr != wr || grok != wrok {
						t.Fatalf("%v method %d: Rank(%d) mismatch", layout, m, r)
					}
				}
			}
		}
	}
}

func TestAccessWithNulls(t *testing.T) {
	col := NewColumn(HBP, 8)
	col.Append(10, 20)
	col.AppendNull()
	col.Append(30)
	for _, m := range []AccessMethod{BitParallel, Reconstruct, Auto} {
		if got := col.Sum(col.All(), Access(m)); got != 60 {
			t.Errorf("method %d: Sum = %d, want 60", m, got)
		}
	}
}

func TestAccessComposesWithThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	vals := make([]uint64, 5000)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1000))
	}
	col := FromValues(VBP, 10, vals)
	sel := col.Scan(Less(10)) // selective: Auto -> reconstruction, threaded
	want := col.Sum(sel)
	if got := col.Sum(sel, Access(Auto), Parallel(4)); got != want {
		t.Errorf("Auto+Parallel Sum = %d, want %d", got, want)
	}
	if got := col.Sum(sel, Access(Reconstruct), Parallel(4)); got != want {
		t.Errorf("Reconstruct+Parallel Sum = %d, want %d", got, want)
	}
}

func TestAutoThresholds(t *testing.T) {
	if autoThreshold(VBP) >= autoThreshold(HBP) {
		t.Error("VBP reconstruction is costlier, so its threshold must be lower")
	}
	empty := NewColumn(VBP, 4)
	if empty.useReconstruct(empty.All().b, execConfig{access: Auto}) {
		t.Error("empty column should default to bit-parallel")
	}
}
