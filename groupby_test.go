package bpagg

import (
	"context"
	"math/rand"
	"sort"
	"testing"
)

func TestGroupByAgainstMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const n = 4000
	region := make([]uint64, n)
	amount := make([]uint64, n)
	for i := 0; i < n; i++ {
		region[i] = uint64(rng.Intn(7))
		amount[i] = uint64(rng.Intn(10000))
	}
	tbl := NewTable()
	tbl.AddColumn("region", VBP, 3)
	tbl.AddColumn("amount", HBP, 14)
	tbl.AppendColumnar(map[string][]uint64{"region": region, "amount": amount})

	// Reference: map-based group-by with a filter amount < 5000.
	type agg struct {
		count, sum, min, max uint64
		vals                 []uint64
	}
	ref := map[uint64]*agg{}
	for i := 0; i < n; i++ {
		if amount[i] >= 5000 {
			continue
		}
		a := ref[region[i]]
		if a == nil {
			a = &agg{min: ^uint64(0)}
			ref[region[i]] = a
		}
		a.count++
		a.sum += amount[i]
		if amount[i] < a.min {
			a.min = amount[i]
		}
		if amount[i] > a.max {
			a.max = amount[i]
		}
		a.vals = append(a.vals, amount[i])
	}

	g := tbl.Query().Where("amount", Less(5000)).GroupBy("region")
	keys := g.Keys()
	if len(keys) != len(ref) {
		t.Fatalf("got %d groups, want %d", len(keys), len(ref))
	}
	// Keys must be ascending.
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not ascending: %v", keys)
		}
	}
	counts := g.Count()
	sums := g.Sum("amount")
	mins := g.Min("amount")
	maxs := g.Max("amount")
	meds := g.Median("amount")
	avgs := g.Avg("amount")
	for i, key := range keys {
		want := ref[key]
		if want == nil {
			t.Fatalf("unexpected group %d", key)
		}
		if counts[i] != want.count || sums[i] != want.sum ||
			mins[i] != want.min || maxs[i] != want.max {
			t.Fatalf("group %d: got (c=%d s=%d mn=%d mx=%d), want (c=%d s=%d mn=%d mx=%d)",
				key, counts[i], sums[i], mins[i], maxs[i],
				want.count, want.sum, want.min, want.max)
		}
		sort.Slice(want.vals, func(a, b int) bool { return want.vals[a] < want.vals[b] })
		if wantMed := want.vals[(len(want.vals)+1)/2-1]; meds[i] != wantMed {
			t.Fatalf("group %d median: got %d want %d", key, meds[i], wantMed)
		}
		if wantAvg := float64(want.sum) / float64(want.count); avgs[i] != wantAvg {
			t.Fatalf("group %d avg: got %v want %v", key, avgs[i], wantAvg)
		}
	}
}

func TestGroupByEmptySelection(t *testing.T) {
	tbl := NewTable()
	tbl.AddColumn("g", VBP, 4)
	tbl.AddColumn("v", VBP, 8)
	tbl.AppendColumnar(map[string][]uint64{"g": {1, 2, 3}, "v": {10, 20, 30}})
	g := tbl.Query().Where("v", Greater(100)).GroupBy("g")
	if g.Len() != 0 {
		t.Fatalf("empty selection produced %d groups", g.Len())
	}
	if len(g.Sum("v")) != 0 || len(g.Keys()) != 0 {
		t.Fatal("aggregates over zero groups should be empty")
	}
}

func TestGroupBySingleGroup(t *testing.T) {
	tbl := NewTable()
	tbl.AddColumn("g", HBP, 4)
	tbl.AddColumn("v", VBP, 8)
	tbl.AppendColumnar(map[string][]uint64{"g": {5, 5, 5}, "v": {1, 2, 3}})
	g := tbl.Query().GroupBy("g")
	if g.Len() != 1 || g.Keys()[0] != 5 {
		t.Fatalf("groups = %v", g.Keys())
	}
	if got := g.Sum("v")[0]; got != 6 {
		t.Fatalf("Sum = %d", got)
	}
	if got := g.Count()[0]; got != 3 {
		t.Fatalf("Count = %d", got)
	}
	if sel := g.Selection(0); sel.Count() != 3 {
		t.Fatalf("Selection count = %d", sel.Count())
	}
}

func TestGroupByUnknownColumnPanics(t *testing.T) {
	tbl := NewTable()
	tbl.AddColumn("g", VBP, 4)
	tbl.AppendColumnar(map[string][]uint64{"g": {1}})
	defer func() {
		if recover() == nil {
			t.Fatal("GroupBy on unknown column did not panic")
		}
	}()
	tbl.Query().GroupBy("nope")
}

// groupStatsTable builds a small table with a known number of distinct
// group keys for the metrics-asserted invariant tests.
func groupStatsTable(t *testing.T) (*Table, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(103))
	const n, groups = 2000, 7
	key := make([]uint64, n)
	val := make([]uint64, n)
	for i := range key {
		key[i] = uint64(i % groups) // every key present
		val[i] = uint64(rng.Intn(1 << 10))
	}
	tbl := NewTable()
	tbl.AddColumn("key", VBP, 3)
	tbl.AddColumn("val", HBP, 10)
	tbl.AppendColumnar(map[string][]uint64{"key": key, "val": val})
	return tbl, groups
}

// TestGroupByOneScanPerGroup pins the legacy discovery cost: finding G
// groups takes exactly G equality scans — the strictly-greater residual
// is derived from the just-computed equality bitmap (AndNot), never
// scanned — and the walk's scan-side word counts are exactly those of G
// standalone equality scans. Materializing the selection first forces
// the legacy walk (a pre-built selection gates off single-pass).
func TestGroupByOneScanPerGroup(t *testing.T) {
	tbl, groups := groupStatsTable(t)
	q := tbl.Query().WithStats()
	q.Selection()
	g := q.GroupBy("key")
	if g.SinglePass() {
		t.Fatal("materialized selection should force the legacy walk")
	}
	if g.Len() != groups {
		t.Fatalf("groups = %d, want %d", g.Len(), groups)
	}
	s := q.Stats()
	if s.Scans != uint64(groups) {
		t.Errorf("discovery Scans = %d, want exactly one per group (%d)", s.Scans, groups)
	}

	// Word-count invariant: the walk must cost the same packed-word
	// comparisons as scanning each key's equality once by hand.
	man := NewStatsCollector()
	col := tbl.Column("key")
	for _, v := range g.Keys() {
		col.ScanStats(Equal(v), man)
	}
	ms := man.Snapshot()
	if s.WordsCompared != ms.WordsCompared {
		t.Errorf("WordsCompared = %d, want %d (G standalone equality scans)",
			s.WordsCompared, ms.WordsCompared)
	}
	if s.SegmentsScanned != ms.SegmentsScanned {
		t.Errorf("SegmentsScanned = %d, want %d", s.SegmentsScanned, ms.SegmentsScanned)
	}

	// The ctx-aware walk shares the invariant and the keys.
	q2 := tbl.Query().WithStats()
	q2.Selection()
	g2, err := q2.GroupByContext(context.Background(), "key")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != groups {
		t.Fatalf("ctx groups = %d, want %d", g2.Len(), groups)
	}
	for i, k := range g.Keys() {
		if g2.Keys()[i] != k {
			t.Fatalf("ctx keys %v != plain keys %v", g2.Keys(), g.Keys())
		}
	}
	if s2 := q2.Stats(); s2.Scans != uint64(groups) {
		t.Errorf("ctx discovery Scans = %d, want %d", s2.Scans, groups)
	}
}

// TestGroupedAggregatesVisibleInStats: legacy per-group aggregates must
// flow into the query's stats collector like everything else the query
// runs — one recorded aggregate per group for Sum, a per-group multiple
// for Avg. (The single-pass twin records one banked aggregate per call;
// see TestGroupSinglePassStats.)
func TestGroupedAggregatesVisibleInStats(t *testing.T) {
	tbl, groups := groupStatsTable(t)
	q := tbl.Query().WithStats()
	q.Selection()
	g := q.GroupBy("key")
	base := q.Stats()

	g.Sum("val")
	afterSum := q.Stats()
	if got := afterSum.Aggregates - base.Aggregates; got != uint64(groups) {
		t.Errorf("Grouped.Sum recorded %d aggregates, want one per group (%d)", got, groups)
	}
	if afterSum.WordsTouched <= base.WordsTouched {
		t.Error("Grouped.Sum moved no WordsTouched")
	}

	g.Avg("val")
	afterAvg := q.Stats()
	got := afterAvg.Aggregates - afterSum.Aggregates
	if got == 0 || got%uint64(groups) != 0 {
		t.Errorf("Grouped.Avg recorded %d aggregates, want a positive per-group multiple of %d", got, groups)
	}
}

// TestLazyClauseScanVisibleInStats: Where/WhereErr record clauses lazily,
// so the eventual scan is captured by the collector even when WithStats
// is attached after the clause.
func TestLazyClauseScanVisibleInStats(t *testing.T) {
	tbl, _ := groupStatsTable(t)
	q, err := tbl.Query().WhereErr("val", Less(500))
	if err != nil {
		t.Fatal(err)
	}
	q.WithStats()
	q.Selection()
	if s := q.Stats(); s.Scans != 1 {
		t.Errorf("Scans = %d, want the WhereErr clause's scan recorded", s.Scans)
	}

	q2 := tbl.Query().Where("val", Less(500)).WithStats()
	if got, err := q2.CountContext(context.Background(), "val"); err != nil || got != uint64(q.Selection().Count()) {
		t.Fatalf("CountContext = (%v, %v)", got, err)
	}
	if s := q2.Stats(); s.Scans != 1 {
		t.Errorf("fused CountContext Scans = %d, want 1", s.Scans)
	}
}

func TestGroupByWithExecOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	const n = 3000
	g := make([]uint64, n)
	v := make([]uint64, n)
	for i := range g {
		g[i] = uint64(rng.Intn(4))
		v[i] = uint64(rng.Intn(1000))
	}
	tbl := NewTable()
	tbl.AddColumn("g", VBP, 2)
	tbl.AddColumn("v", VBP, 10)
	tbl.AppendColumnar(map[string][]uint64{"g": g, "v": v})
	base := tbl.Query().GroupBy("g").Sum("v")
	fast := tbl.Query().With(Parallel(4), WideWords()).GroupBy("g").Sum("v")
	for i := range base {
		if base[i] != fast[i] {
			t.Fatalf("group %d: serial %d, parallel+wide %d", i, base[i], fast[i])
		}
	}
}
