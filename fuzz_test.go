package bpagg

import (
	"bytes"
	"testing"
)

// FuzzReadColumn asserts the column deserializer never panics on arbitrary
// bytes: it must either reject the input with an error or return a column
// whose aggregates run without crashing.
func FuzzReadColumn(f *testing.F) {
	// Seed with valid serializations of both layouts, with and without
	// NULLs, so mutation explores near-valid inputs.
	for _, layout := range []Layout{VBP, HBP} {
		col := FromValues(layout, 9, []uint64{1, 2, 3, 500, 0})
		var buf bytes.Buffer
		if _, err := col.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())

		withNulls := NewColumn(layout, 5)
		withNulls.Append(7)
		withNulls.AppendNull()
		buf.Reset()
		if _, err := withNulls.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("BPAG garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		col, err := ReadColumn(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must behave like a column.
		if col.Len() < 0 {
			t.Fatal("negative length")
		}
		all := col.All()
		_ = col.Sum(all)
		_, _ = col.Min(all)
		_, _ = col.Median(all)
		if col.Len() > 0 {
			_ = col.Value(0)
		}
	})
}

// FuzzReadTable mirrors FuzzReadColumn for the table container.
func FuzzReadTable(f *testing.F) {
	tbl := NewTable()
	tbl.AddColumn("a", VBP, 4)
	tbl.AddColumn("b", HBP, 8)
	tbl.AppendColumnar(map[string][]uint64{"a": {1, 2}, "b": {3, 4}})
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTable(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, name := range got.Columns() {
			col := got.Column(name)
			_ = col.Sum(col.All())
		}
	})
}
