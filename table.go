package bpagg

import (
	"fmt"

	"bpagg/internal/bitvec"
)

// Table is a collection of equal-length bit-packed columns — the
// denormalized "wide table" the paper assumes (§III, following WideTable
// [11]): joins and group-bys are materialized away up front, so queries are
// conjunctive filter scans followed by aggregation over single columns.
type Table struct {
	names []string
	cols  map[string]*Column
	rows  int
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{cols: make(map[string]*Column)}
}

// NewTableFromColumns assembles a table from independently built columns
// (the path loaders take when rows arrive column-wise with NULLs). All
// columns must have equal length; names and cols are parallel.
func NewTableFromColumns(names []string, cols []*Column) *Table {
	if len(names) != len(cols) {
		panic(fmt.Sprintf("bpagg: %d names for %d columns", len(names), len(cols)))
	}
	if len(cols) == 0 {
		panic("bpagg: table needs at least one column")
	}
	t := NewTable()
	n := cols[0].Len()
	for i, name := range names {
		if _, dup := t.cols[name]; dup {
			panic(fmt.Sprintf("bpagg: duplicate column %q", name))
		}
		if cols[i].Len() != n {
			panic(fmt.Sprintf("bpagg: column %q has %d rows, want %d", name, cols[i].Len(), n))
		}
		t.cols[name] = cols[i]
		t.names = append(t.names, name)
	}
	t.rows = n
	return t
}

// AddColumn registers an empty column. It panics if the name is taken or
// rows have already been appended.
func (t *Table) AddColumn(name string, layout Layout, bitWidth int, opts ...ColumnOption) *Column {
	if _, dup := t.cols[name]; dup {
		panic(fmt.Sprintf("bpagg: duplicate column %q", name))
	}
	if t.rows != 0 {
		panic("bpagg: AddColumn after rows were appended")
	}
	c := NewColumn(layout, bitWidth, opts...)
	t.cols[name] = c
	t.names = append(t.names, name)
	return c
}

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column { return t.cols[name] }

// Columns returns the column names in registration order.
func (t *Table) Columns() []string {
	return append([]string(nil), t.names...)
}

// Rows returns the number of rows in the table.
func (t *Table) Rows() int { return t.rows }

// AppendRow appends one row; vals must provide a code for every column.
func (t *Table) AppendRow(vals map[string]uint64) {
	if len(vals) != len(t.names) {
		panic(fmt.Sprintf("bpagg: row has %d values, table has %d columns", len(vals), len(t.names)))
	}
	for _, name := range t.names {
		v, ok := vals[name]
		if !ok {
			panic(fmt.Sprintf("bpagg: row missing column %q", name))
		}
		t.cols[name].Append(v)
	}
	t.rows++
}

// AppendColumnar appends many rows given per-column value slices of equal
// length — the natural bulk-load path for columnar data.
func (t *Table) AppendColumnar(vals map[string][]uint64) {
	if len(vals) != len(t.names) {
		panic(fmt.Sprintf("bpagg: load has %d columns, table has %d", len(vals), len(t.names)))
	}
	n := -1
	for _, name := range t.names {
		col, ok := vals[name]
		if !ok {
			panic(fmt.Sprintf("bpagg: load missing column %q", name))
		}
		if n == -1 {
			n = len(col)
		} else if len(col) != n {
			panic(fmt.Sprintf("bpagg: column %q has %d values, want %d", name, len(col), n))
		}
	}
	for _, name := range t.names {
		t.cols[name].Append(vals[name]...)
	}
	t.rows += n
}

// Query starts a query over the table.
func (t *Table) Query() *Query {
	return &Query{t: t}
}

// Query is a conjunctive filter over table columns followed by aggregation.
// Each Where clause runs as an independent bit-parallel scan; the
// selections intersect (paper §II-E), and the aggregate methods run on the
// combined filter bit vector.
type Query struct {
	t     *Table
	sel   *Bitmap
	execs []ExecOption
	stats *StatsCollector
}

// Where adds a conjunctive predicate on the named column and returns the
// query for chaining.
func (q *Query) Where(column string, p Predicate) *Query {
	col := q.t.cols[column]
	if col == nil {
		panic(fmt.Sprintf("bpagg: unknown column %q", column))
	}
	m := col.ScanStats(p, q.stats)
	if q.sel == nil {
		q.sel = m
	} else {
		q.sel.And(m)
	}
	return q
}

// With sets execution options (Parallel, WideWords) for the aggregates.
func (q *Query) With(opts ...ExecOption) *Query {
	q.execs = append(q.execs, opts...)
	return q
}

// WithStats enables per-query statistics collection: every later Where
// scan, GroupBy walk, and aggregate records into the query's collector,
// readable at any point via Stats. Call it before the first Where so the
// filter scans are captured too.
func (q *Query) WithStats() *Query {
	if q.stats == nil {
		q.stats = NewStatsCollector()
		q.execs = append(q.execs, CollectStats(q.stats))
	}
	return q
}

// Stats returns a snapshot of the counters collected so far; zero when
// WithStats was not called.
func (q *Query) Stats() ExecStats {
	return q.stats.Snapshot()
}

// Selection returns the query's current filter bitmap (all rows if no Where
// clause was added).
func (q *Query) Selection() *Bitmap {
	if q.sel == nil {
		q.sel = &Bitmap{b: bitvec.NewFull(q.t.rows)}
	}
	return q.sel
}

// CountRows returns the number of rows passing the filter.
func (q *Query) CountRows() uint64 {
	return uint64(q.Selection().Count())
}

// Sum aggregates SUM over the named column.
func (q *Query) Sum(column string) uint64 {
	return q.col(column).Sum(q.Selection(), q.execs...)
}

// Min aggregates MIN over the named column.
func (q *Query) Min(column string) (uint64, bool) {
	return q.col(column).Min(q.Selection(), q.execs...)
}

// Max aggregates MAX over the named column.
func (q *Query) Max(column string) (uint64, bool) {
	return q.col(column).Max(q.Selection(), q.execs...)
}

// Avg aggregates AVG over the named column.
func (q *Query) Avg(column string) (float64, bool) {
	return q.col(column).Avg(q.Selection(), q.execs...)
}

// Median aggregates the lower MEDIAN over the named column.
func (q *Query) Median(column string) (uint64, bool) {
	return q.col(column).Median(q.Selection(), q.execs...)
}

// Rank returns the r-th smallest selected value of the named column.
func (q *Query) Rank(column string, r uint64) (uint64, bool) {
	return q.col(column).Rank(q.Selection(), r, q.execs...)
}

// Quantile returns the q-quantile (nearest rank) of the named column.
func (q *Query) Quantile(column string, quantile float64) (uint64, bool) {
	return q.col(column).Quantile(q.Selection(), quantile, q.execs...)
}

func (q *Query) col(name string) *Column {
	c := q.t.cols[name]
	if c == nil {
		panic(fmt.Sprintf("bpagg: unknown column %q", name))
	}
	return c
}
