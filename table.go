package bpagg

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"bpagg/internal/bitvec"
	"bpagg/internal/rangeidx"
)

// Table is a collection of equal-length bit-packed columns — the
// denormalized "wide table" the paper assumes (§III, following WideTable
// [11]): joins and group-bys are materialized away up front, so queries are
// conjunctive filter scans followed by aggregation over single columns.
type Table struct {
	names []string
	cols  map[string]*Column
	rows  int

	// Range-index state (range.go). mu serializes appends with index
	// maintenance; epoch is the atomically published immutable snapshot
	// set range/window queries pin; ridx holds the per-column prefix-sum
	// builders, nil until the first Range/Window call enables them.
	mu    sync.Mutex
	epoch atomic.Pointer[tableEpoch]
	ridx  map[string]*rangeidx.Builder
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{cols: make(map[string]*Column)}
}

// NewTableFromColumns assembles a table from independently built columns
// (the path loaders take when rows arrive column-wise with NULLs). All
// columns must have equal length; names and cols are parallel.
func NewTableFromColumns(names []string, cols []*Column) *Table {
	if len(names) != len(cols) {
		panic(fmt.Sprintf("bpagg: %d names for %d columns", len(names), len(cols)))
	}
	if len(cols) == 0 {
		panic("bpagg: table needs at least one column")
	}
	t := NewTable()
	n := cols[0].Len()
	for i, name := range names {
		if _, dup := t.cols[name]; dup {
			panic(fmt.Sprintf("bpagg: duplicate column %q", name))
		}
		if cols[i].Len() != n {
			panic(fmt.Sprintf("bpagg: column %q has %d rows, want %d", name, cols[i].Len(), n))
		}
		t.cols[name] = cols[i]
		t.names = append(t.names, name)
	}
	t.rows = n
	return t
}

// AddColumn registers an empty column. It panics if the name is taken or
// rows have already been appended.
func (t *Table) AddColumn(name string, layout Layout, bitWidth int, opts ...ColumnOption) *Column {
	if _, dup := t.cols[name]; dup {
		panic(fmt.Sprintf("bpagg: duplicate column %q", name))
	}
	if t.rows != 0 {
		panic("bpagg: AddColumn after rows were appended")
	}
	c := NewColumn(layout, bitWidth, opts...)
	t.cols[name] = c
	t.names = append(t.names, name)
	return c
}

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column { return t.cols[name] }

// Columns returns the column names in registration order.
func (t *Table) Columns() []string {
	return append([]string(nil), t.names...)
}

// Rows returns the number of rows in the table.
func (t *Table) Rows() int { return t.rows }

// AppendRow appends one row; vals must provide a code for every column.
// The row is validated in full — presence and bit width of every value —
// before any column is touched, so a panic never leaves columns at
// unequal lengths.
func (t *Table) AppendRow(vals map[string]uint64) {
	if len(t.names) == 0 {
		panic("bpagg: AppendRow on a table with no columns")
	}
	if len(vals) != len(t.names) {
		panic(fmt.Sprintf("bpagg: row has %d values, table has %d columns", len(vals), len(t.names)))
	}
	for _, name := range t.names {
		v, ok := vals[name]
		if !ok {
			panic(fmt.Sprintf("bpagg: row missing column %q", name))
		}
		t.cols[name].checkFits(name, v)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, name := range t.names {
		t.cols[name].Append(vals[name])
	}
	t.rows++
	t.publishEpochLocked()
}

// AppendColumnar appends many rows given per-column value slices of equal
// length — the natural bulk-load path for columnar data. Like AppendRow it
// validates the whole load (column set, equal lengths, bit width of every
// value) before mutating anything; a rejected load leaves Rows() and every
// column length unchanged. Loads into a table with no columns are rejected
// because they carry no row count.
func (t *Table) AppendColumnar(vals map[string][]uint64) {
	if len(t.names) == 0 {
		panic("bpagg: AppendColumnar on a table with no columns")
	}
	if len(vals) != len(t.names) {
		panic(fmt.Sprintf("bpagg: load has %d columns, table has %d", len(vals), len(t.names)))
	}
	n := -1
	for _, name := range t.names {
		col, ok := vals[name]
		if !ok {
			panic(fmt.Sprintf("bpagg: load missing column %q", name))
		}
		if n == -1 {
			n = len(col)
		} else if len(col) != n {
			panic(fmt.Sprintf("bpagg: column %q has %d values, want %d", name, len(col), n))
		}
	}
	for _, name := range t.names {
		c := t.cols[name]
		for _, v := range vals[name] {
			c.checkFits(name, v)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, name := range t.names {
		t.cols[name].Append(vals[name]...)
	}
	t.rows += n
	t.publishEpochLocked()
}

// Query starts a query over the table.
func (t *Table) Query() *Query {
	return &Query{t: t}
}

// Query is a conjunctive filter over table columns followed by aggregation.
// Where clauses are recorded, not executed: when an aggregate can fuse
// (see query_fused.go) each segment's filter word flows straight from the
// predicate lanes into the aggregate kernel and no filter bitmap ever
// exists. Otherwise the clauses run as independent bit-parallel scans
// whose selections intersect (paper §II-E), and the aggregate runs on the
// combined filter bit vector — the two paths are bit-identical.
type Query struct {
	t       *Table
	clauses []whereClause
	applied int // clauses already folded into sel
	sel     *Bitmap
	execs   []ExecOption
	stats   *StatsCollector
}

// Where adds a conjunctive predicate on the named column and returns the
// query for chaining. The clause is validated here (unknown columns and
// oversized constants panic immediately, as they always did) but executes
// lazily — at the next non-fusible aggregate or Selection call.
func (q *Query) Where(column string, p Predicate) *Query {
	col := q.t.cols[column]
	if col == nil {
		panic(fmt.Sprintf("bpagg: unknown column %q", column))
	}
	checkPredFits(p, col.k)
	q.clauses = append(q.clauses, whereClause{name: column, col: col, pred: p})
	return q
}

// With sets execution options (Parallel, WideWords) for the aggregates.
func (q *Query) With(opts ...ExecOption) *Query {
	q.execs = append(q.execs, opts...)
	return q
}

// WithStats enables per-query statistics collection: every filter scan,
// GroupBy walk, and aggregate (fused or two-phase) records into the
// query's collector, readable at any point via Stats. Because Where
// clauses execute lazily, scans are captured regardless of whether
// WithStats comes before or after them — only work already executed is
// missed.
func (q *Query) WithStats() *Query {
	if q.stats == nil {
		q.stats = NewStatsCollector()
		q.execs = append(q.execs, CollectStats(q.stats))
	}
	return q
}

// Stats returns a snapshot of the counters collected so far; zero when
// WithStats was not called.
func (q *Query) Stats() ExecStats {
	return q.stats.Snapshot()
}

// Selection materializes and returns the query's filter bitmap (all rows
// if no Where clause was added): pending clauses run as bit-parallel
// scans, recorded through the query's stats collector, and intersect in
// clause order. Materializing disables fusion for subsequent aggregates —
// they run two-phase on the returned bitmap (which the caller may also
// combine with arbitrary bitmaps).
func (q *Query) Selection() *Bitmap {
	if q.sel == nil {
		if len(q.clauses) > 0 {
			cl := q.clauses[0]
			q.sel = cl.col.ScanStats(cl.pred, q.stats)
			q.applied = 1
		} else {
			q.sel = &Bitmap{b: bitvec.NewFull(q.t.rows)}
		}
	}
	for ; q.applied < len(q.clauses); q.applied++ {
		cl := q.clauses[q.applied]
		q.sel.And(cl.col.ScanStats(cl.pred, q.stats))
	}
	return q.sel
}

// CountRows returns the number of rows passing the filter.
func (q *Query) CountRows() uint64 {
	if preds, o, ok := q.fusedPlan(nil); ok {
		cnt, err := q.fusedCount(context.Background(), preds, o)
		fusedMust(err)
		return cnt
	}
	return uint64(q.Selection().Count())
}

// Sum aggregates SUM over the named column.
func (q *Query) Sum(column string) uint64 {
	col := q.col(column)
	if preds, o, ok := q.fusedPlan(col); ok {
		sum, _, err := col.fusedSum(context.Background(), preds, o)
		fusedMust(err)
		return sum
	}
	return col.Sum(q.Selection(), q.execs...)
}

// Min aggregates MIN over the named column.
func (q *Query) Min(column string) (uint64, bool) {
	return q.extreme(column, true)
}

// Max aggregates MAX over the named column.
func (q *Query) Max(column string) (uint64, bool) {
	return q.extreme(column, false)
}

func (q *Query) extreme(column string, wantMin bool) (uint64, bool) {
	col := q.col(column)
	if preds, o, ok := q.fusedPlan(col); ok {
		v, cnt, err := col.fusedExtreme(context.Background(), preds, o, wantMin)
		fusedMust(err)
		return v, cnt > 0
	}
	if wantMin {
		return col.Min(q.Selection(), q.execs...)
	}
	return col.Max(q.Selection(), q.execs...)
}

// Avg aggregates AVG over the named column.
func (q *Query) Avg(column string) (float64, bool) {
	col := q.col(column)
	if preds, o, ok := q.fusedPlan(col); ok {
		sum, cnt, err := col.fusedSum(context.Background(), preds, o)
		fusedMust(err)
		if cnt == 0 {
			return 0, false
		}
		return float64(sum) / float64(cnt), true
	}
	return col.Avg(q.Selection(), q.execs...)
}

// Median aggregates the lower MEDIAN over the named column.
func (q *Query) Median(column string) (uint64, bool) {
	col := q.col(column)
	if preds, o, ok := q.fusedPlan(col); ok {
		v, _, found, err := col.fusedRank(context.Background(), preds, o, medianRank)
		fusedMust(err)
		return v, found
	}
	return col.Median(q.Selection(), q.execs...)
}

// Rank returns the r-th smallest selected value of the named column.
func (q *Query) Rank(column string, r uint64) (uint64, bool) {
	col := q.col(column)
	if preds, o, ok := q.fusedPlan(col); ok {
		v, _, found, err := col.fusedRank(context.Background(), preds, o,
			func(uint64) (uint64, bool) { return r, true })
		fusedMust(err)
		return v, found
	}
	return col.Rank(q.Selection(), r, q.execs...)
}

// Quantile returns the q-quantile (nearest rank) of the named column.
func (q *Query) Quantile(column string, quantile float64) (uint64, bool) {
	if quantile < 0 || quantile > 1 {
		panic(fmt.Sprintf("bpagg: quantile %v outside [0,1]", quantile))
	}
	col := q.col(column)
	if preds, o, ok := q.fusedPlan(col); ok {
		v, _, found, err := col.fusedRank(context.Background(), preds, o, quantileRank(quantile))
		fusedMust(err)
		return v, found
	}
	return col.Quantile(q.Selection(), quantile, q.execs...)
}

func (q *Query) col(name string) *Column {
	c := q.t.cols[name]
	if c == nil {
		panic(fmt.Sprintf("bpagg: unknown column %q", name))
	}
	return c
}
