// Ablation benchmarks for the design choices behind the layouts (DESIGN.md
// §5): the bit-group size tau, the word-group cache optimization of §II-C,
// and the aligned-segment fast path. These have no counterpart figure in
// the paper (the authors fix tau analytically, per footnote 4) but justify
// the defaults this implementation ships.

package bpagg_test

import (
	"bpagg"

	"fmt"
	"math/rand"
	"testing"
)

// ablationColumn builds one shared value set packed under a specific tau.
func ablationColumn(layout bpagg.Layout, k, tau int) *bpagg.Column {
	rng := rand.New(rand.NewSource(5))
	vals := make([]uint64, 1<<19)
	for i := range vals {
		vals[i] = rng.Uint64() & ((1 << uint(k)) - 1)
	}
	return bpagg.FromValues(layout, k, vals, bpagg.WithGroupBits(tau))
}

// BenchmarkAblationTauHBP sweeps the HBP bit-group size for a 25-bit
// column. tau=25 is the basic Figure 3 format (no bit-groups); the default
// chosen by DefaultTau(25) is 7. SUM cost tracks B/c (words touched per
// value) plus the per-word fold constant; MEDIAN additionally pays one
// histogram round per ceil(k/tau) groups.
func BenchmarkAblationTauHBP(b *testing.B) {
	const k = 25
	for _, tau := range []int{1, 3, 4, 7, 12, 15, 25} {
		col := ablationColumn(bpagg.HBP, k, tau)
		sel := col.Scan(bpagg.Less(1 << 24))
		b.Run(fmt.Sprintf("SUM/tau=%d", tau), func(b *testing.B) {
			benchOp(b, col.Len(), func() { col.Sum(sel) })
		})
		b.Run(fmt.Sprintf("MEDIAN/tau=%d", tau), func(b *testing.B) {
			benchOp(b, col.Len(), func() { col.Median(sel) })
		})
	}
}

// BenchmarkAblationTauVBPScan sweeps the VBP bit-group size under a highly
// selective equality scan — the case §II-C's word-groups exist for: once a
// group decides every tuple of a segment, the remaining groups' cache
// lines are never touched. Small tau stops earlier per group but splits k
// bits across more groups.
func BenchmarkAblationTauVBPScan(b *testing.B) {
	const k = 25
	for _, tau := range []int{1, 2, 4, 8, 25} {
		col := ablationColumn(bpagg.VBP, k, tau)
		b.Run(fmt.Sprintf("EQ/tau=%d", tau), func(b *testing.B) {
			benchOp(b, col.Len(), func() { col.Scan(bpagg.Equal(12345)) })
		})
	}
}

// BenchmarkAblationAlignedSegments compares an HBP tau whose field width
// divides 64 (tau=7: segments hold exactly 64 tuples, filter windows are
// aligned words) against a neighbor with the same words-per-value ratio
// but unaligned 60-tuple segments (tau=5).
func BenchmarkAblationAlignedSegments(b *testing.B) {
	const k = 25
	for _, tau := range []int{5, 7} {
		col := ablationColumn(bpagg.HBP, k, tau)
		sel := col.Scan(bpagg.Less(1 << 24))
		b.Run(fmt.Sprintf("SUM/tau=%d", tau), func(b *testing.B) {
			benchOp(b, col.Len(), func() { col.Sum(sel) })
		})
	}
}

// BenchmarkAblationEarlyStop isolates the early-stopping advantage the
// paper credits MIN/MAX for (Figure 5 discussion): under a sparse filter,
// the staged comparison and the md==0 sub-segment skip leave most memory
// untouched, while SUM must still visit every word that holds a selected
// tuple.
func BenchmarkAblationEarlyStop(b *testing.B) {
	const k = 25
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		col := ablationColumn(layout, k, 0b0) // 0 -> layout default
		for _, sel := range []struct {
			name string
			bm   *bpagg.Bitmap
		}{
			{"sparse", col.Scan(bpagg.Less(1 << 18))}, // ~0.8% of rows
			{"dense", col.Scan(bpagg.Less(1 << 24))},  // ~50% of rows
		} {
			b.Run(fmt.Sprintf("%v/MIN/%s", layout, sel.name), func(b *testing.B) {
				benchOp(b, col.Len(), func() { col.Min(sel.bm) })
			})
			b.Run(fmt.Sprintf("%v/SUM/%s", layout, sel.name), func(b *testing.B) {
				benchOp(b, col.Len(), func() { col.Sum(sel.bm) })
			})
		}
	}
}
