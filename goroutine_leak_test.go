package bpagg

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"bpagg/internal/faultinject"
)

// workerGate deterministically holds aggregation workers inside the
// kernel loop so a test can cancel the context while the operation is
// provably mid-scan (not before it started, not after it finished).
// The SiteWorkerRange hook blocks every worker until release.
type workerGate struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func holdWorkers(t *testing.T) *workerGate {
	t.Helper()
	g := &workerGate{entered: make(chan struct{}), release: make(chan struct{})}
	faultinject.Set(faultinject.SiteWorkerRange, func(...any) error {
		g.once.Do(func() { close(g.entered) })
		<-g.release
		return nil
	})
	t.Cleanup(func() {
		g.releaseAll()
		faultinject.Reset()
	})
	return g
}

func (g *workerGate) releaseAll() {
	select {
	case <-g.release:
	default:
		close(g.release)
	}
}

// requireNoLeak asserts the goroutine count returns to (near) baseline,
// retrying briefly because joined workers unwind asynchronously.
func requireNoLeak(t *testing.T, name string, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("%s leaked goroutines: %d > baseline %d\n%s",
			name, g, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// cancelMidFlight runs op while workers are held at the gate, cancels
// the context mid-scan, releases the workers, and requires both a
// context.Canceled result and a clean goroutine ledger.
//
// The column sizes below are chosen so every worker owns more than one
// 4096-segment block: the cancellation check sits between blocks, so a
// single-block worker would legitimately finish despite the cancel and
// the test would prove nothing.
func cancelMidFlight(t *testing.T, name string, op func(ctx context.Context) error) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	g := holdWorkers(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	errc := make(chan error, 1)
	go func() { errc <- op(ctx) }()

	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		g.releaseAll()
		t.Fatalf("%s: no worker reached the kernel loop", name)
	}
	cancel()
	g.releaseAll()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s canceled mid-scan = %v, want context.Canceled", name, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: operation never returned after cancel", name)
	}
	faultinject.Reset()
	requireNoLeak(t, name, baseline)
}

// leakTable builds a two-column table big enough that two workers get
// multiple blocks each (~17k segments): "g" is a low-cardinality
// grouping column, "v" the measure.
func leakTable(t *testing.T) *Table {
	t.Helper()
	const n = 1_100_000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i % 8)
		vals[i] = uint64(i % 1021)
	}
	tbl := NewTable()
	tbl.AddColumn("g", VBP, 4)
	tbl.AddColumn("v", VBP, 10)
	tbl.AppendColumnar(map[string][]uint64{"g": keys, "v": vals})
	return tbl
}

// TestCancellationLeaksColumnKernels covers the plain column aggregates
// on both layouts: cancellation mid-scan must join every worker.
func TestCancellationLeaksColumnKernels(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		col, sel := bigColumn(t, layout, 1_100_000, 16)
		cancelMidFlight(t, layout.String()+" SumContext", func(ctx context.Context) error {
			_, err := col.SumContext(ctx, sel, Parallel(2))
			return err
		})
		cancelMidFlight(t, layout.String()+" MinContext", func(ctx context.Context) error {
			_, _, err := col.MinContext(ctx, sel, Parallel(2))
			return err
		})
		cancelMidFlight(t, layout.String()+" MedianContext", func(ctx context.Context) error {
			_, _, err := col.MedianContext(ctx, sel, Parallel(2))
			return err
		})
	}
}

// TestCancellationLeaksFusedScan cancels inside the fused
// scan→aggregate pipeline (no materialized bitmap to fall back on).
func TestCancellationLeaksFusedScan(t *testing.T) {
	tbl := leakTable(t)
	q := tbl.Query().With(Parallel(2)).Where("v", Less(900))
	if !q.Fused("v") {
		t.Fatal("query unexpectedly not fused; the test would miss the fused path")
	}
	cancelMidFlight(t, "fused SumCountContext", func(ctx context.Context) error {
		_, _, err := q.SumCountContext(ctx, "v")
		return err
	})
	cancelMidFlight(t, "fused CountRowsContext", func(ctx context.Context) error {
		_, err := q.CountRowsContext(ctx)
		return err
	})
}

// TestCancellationLeaksSinglePassGroupBy cancels mid-partition in the
// single-pass GROUP BY engine and mid-kernel in the banked per-group
// aggregates that ride on the partition.
func TestCancellationLeaksSinglePassGroupBy(t *testing.T) {
	tbl := leakTable(t)

	cancelMidFlight(t, "single-pass GroupByContext", func(ctx context.Context) error {
		_, err := tbl.Query().With(Parallel(2)).GroupByContext(ctx, "g")
		return err
	})

	// Build the partition cleanly, then cancel inside a banked kernel.
	grouped, err := tbl.Query().With(Parallel(2)).GroupByContext(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	if !grouped.SinglePass() {
		t.Fatal("partition did not take the single-pass path")
	}
	cancelMidFlight(t, "banked Grouped.SumContext", func(ctx context.Context) error {
		_, err := grouped.SumContext(ctx, "v")
		return err
	})
}

// TestCancellationLeaksLegacyGroupWalk forces the legacy per-group walk
// (a materialized selection disqualifies single-pass) and cancels during
// its discovery scans.
func TestCancellationLeaksLegacyGroupWalk(t *testing.T) {
	tbl := leakTable(t)
	q := tbl.Query().With(Parallel(2))
	q.Selection() // materialize: forces the legacy walk
	cancelMidFlight(t, "legacy GroupByContext walk", func(ctx context.Context) error {
		g, err := q.GroupByContext(ctx, "g")
		if err == nil && g.SinglePass() {
			t.Error("legacy-walk test took the single-pass path")
		}
		return err
	})
}
