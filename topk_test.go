package bpagg

import (
	"math/rand"
	"sort"
	"testing"
)

func TestInPredicate(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		col := FromValues(layout, 8, []uint64{5, 9, 5, 200, 0, 9})
		sel := col.Scan(In(5, 0, 77))
		if sel.Count() != 3 {
			t.Fatalf("%v: In selected %d rows", layout, sel.Count())
		}
		for i, want := range []bool{true, false, true, false, true, false} {
			if sel.Get(i) != want {
				t.Fatalf("%v: row %d = %v", layout, i, sel.Get(i))
			}
		}
		if col.Scan(In()).Count() != 0 {
			t.Fatalf("%v: empty In selected rows", layout)
		}
	}
	p := In(3, 5)
	if !p.Matches(3) || !p.Matches(5) || p.Matches(4) {
		t.Error("In.Matches wrong")
	}
	if p.String() != "IN (3, 5)" {
		t.Errorf("In.String = %q", p.String())
	}
}

func TestInPredicateSkipsNulls(t *testing.T) {
	col := NewColumn(VBP, 8)
	col.Append(7)
	col.AppendNull() // placeholder 0
	sel := col.Scan(In(0, 7))
	if sel.Count() != 1 || !sel.Get(0) {
		t.Fatalf("In over nulls selected %d rows", sel.Count())
	}
}

func TestTopKBottomKAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for _, layout := range []Layout{VBP, HBP} {
		const n = 2000
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(rng.Intn(500)) // many duplicates
		}
		col := FromValues(layout, 9, vals)
		sel := col.Scan(Less(400))
		var kept []uint64
		for _, v := range vals {
			if v < 400 {
				kept = append(kept, v)
			}
		}
		sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
		for _, k := range []int{1, 5, 64, len(kept), len(kept) + 10} {
			top := col.TopK(sel, k)
			bottom := col.BottomK(sel, k)
			wantK := k
			if wantK > len(kept) {
				wantK = len(kept)
			}
			if len(top) != wantK || len(bottom) != wantK {
				t.Fatalf("%v k=%d: lengths %d/%d, want %d", layout, k, len(top), len(bottom), wantK)
			}
			for i := 0; i < wantK; i++ {
				if top[i] != kept[len(kept)-1-i] {
					t.Fatalf("%v k=%d: top[%d] = %d, want %d", layout, k, i, top[i], kept[len(kept)-1-i])
				}
				if bottom[i] != kept[i] {
					t.Fatalf("%v k=%d: bottom[%d] = %d, want %d", layout, k, i, bottom[i], kept[i])
				}
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	col := FromValues(VBP, 8, []uint64{42})
	if got := col.TopK(col.All(), 3); len(got) != 1 || got[0] != 42 {
		t.Fatalf("TopK over single row = %v", got)
	}
	if got := col.TopK(col.None(), 3); got != nil {
		t.Fatalf("TopK over empty selection = %v", got)
	}
	if got := col.TopK(col.All(), 0); got != nil {
		t.Fatalf("TopK(0) = %v", got)
	}
	if got := col.BottomK(col.All(), -1); got != nil {
		t.Fatalf("BottomK(-1) = %v", got)
	}
}

func TestTopKAllEqual(t *testing.T) {
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = 7
	}
	col := FromValues(HBP, 4, vals)
	got := col.TopK(col.All(), 5)
	if len(got) != 5 {
		t.Fatalf("TopK = %v", got)
	}
	for _, v := range got {
		if v != 7 {
			t.Fatalf("TopK over constant column = %v", got)
		}
	}
}
