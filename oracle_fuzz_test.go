package bpagg_test

import (
	"encoding/binary"
	"testing"

	"bpagg"
	"bpagg/internal/oracle"
	"bpagg/internal/oracle/diff"
)

// FuzzOracleEquivalence lets the fuzzer drive the differential harness
// directly: it decodes an arbitrary byte string into a legal Case
// (layout, width, τ, one predicate, values) and demands the engine agree
// with the naive oracle on every aggregate over every execution state.
// Any corpus entry that fails is a real divergence — add it as a named
// regression test once fixed.
func FuzzOracleEquivalence(f *testing.F) {
	f.Add(byte(0), byte(8), byte(0), byte(2), uint64(100), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(byte(1), byte(64), byte(31), byte(5), ^uint64(0), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(byte(0), byte(64), byte(1), byte(0), uint64(1)<<63, make([]byte, 8*70))
	f.Add(byte(1), byte(31), byte(4), byte(7), uint64(12345), []byte{})
	f.Fuzz(func(t *testing.T, layoutB, kB, tauB, opB byte, a uint64, data []byte) {
		layout := bpagg.VBP
		if layoutB&1 == 1 {
			layout = bpagg.HBP
		}
		k := 1 + int(kB)%64
		maxTau := k
		if layout == bpagg.HBP && maxTau > 31 {
			maxTau = 31
		}
		tau := int(tauB) % (maxTau + 1) // 0 = library default

		mask := uint64(1)<<uint(k) - 1
		if k == 64 {
			mask = ^uint64(0)
		}
		n := len(data) / 8
		if n > 300 {
			n = 300
		}
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint64(data[i*8:]) & mask
		}

		ops := []oracle.Op{oracle.EQ, oracle.NE, oracle.LT, oracle.LE,
			oracle.GT, oracle.GE, oracle.Between, oracle.In}
		p := oracle.Pred{Op: ops[int(opB)%len(ops)], A: a & mask}
		switch p.Op {
		case oracle.Between:
			p.B = (a >> 7) & mask
		case oracle.In:
			p.List = []uint64{a & mask, (a >> 13) & mask}
		}

		c := diff.Case{
			Name:    "fuzz",
			Layout:  layout,
			K:       k,
			Tau:     tau,
			A:       vals,
			Preds:   []diff.PredSpec{{Col: "a", Pred: p}},
			Threads: []int{1, 3},
		}
		if err := diff.Check(c); err != nil {
			t.Fatal(err)
		}
	})
}
