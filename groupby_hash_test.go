package bpagg

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// TestGroupHashDeterminismAcrossThreads pins the hash tier's merge
// contract at full growth: G = 65536 distinct keys, far past the direct
// tier, must produce bit-identical keys, counts, sums, and minima for
// Threads ∈ {1, 2, 8} on both layouts — the per-worker banks merge by
// sorted key order, so worker count must be unobservable in results.
// The partition must also stay a single traversal regardless of G.
func TestGroupHashDeterminismAcrossThreads(t *testing.T) {
	const G, n = 65536, 131072
	rng := rand.New(rand.NewSource(73))
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i % G) // every key present
		vals[i] = uint64(rng.Intn(1 << 16))
	}
	for _, layout := range []Layout{VBP, HBP} {
		tbl := buildGroupTable(t, layout, layout, 16, 16, keys, vals)

		type result struct {
			keys, counts, sums, mins []uint64
		}
		var ref result
		for _, th := range []int{1, 2, 8} {
			q := tbl.Query().With(Parallel(th)).WithStats()
			g := q.GroupBy("g")
			if g.Strategy() != GroupHash {
				t.Fatalf("layout %v threads %d: strategy = %v, want hash", layout, th, g.Strategy())
			}
			if g.Len() != G {
				t.Fatalf("layout %v threads %d: %d groups, want %d", layout, th, g.Len(), G)
			}
			s := q.Stats()
			if s.Scans != 1 {
				t.Errorf("layout %v threads %d: partition Scans = %d, want 1 (one traversal regardless of G)",
					layout, th, s.Scans)
			}
			if s.HashProbes == 0 {
				t.Errorf("layout %v threads %d: HashProbes = 0, want > 0 on the hash tier", layout, th)
			}
			if s.HashGrowths == 0 {
				t.Errorf("layout %v threads %d: HashGrowths = 0, want > 0 at G=%d", layout, th, G)
			}
			r := result{g.Keys(), g.Count(), g.Sum("v"), g.Min("v")}
			if th == 1 {
				ref = r
				continue
			}
			for name, pair := range map[string][2][]uint64{
				"keys":   {ref.keys, r.keys},
				"counts": {ref.counts, r.counts},
				"sums":   {ref.sums, r.sums},
				"mins":   {ref.mins, r.mins},
			} {
				a, b := pair[0], pair[1]
				if len(a) != len(b) {
					t.Fatalf("layout %v: %s length differs between threads 1 (%d) and %d (%d)",
						layout, name, len(a), th, len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("layout %v: %s[%d] = %d at threads %d, %d at threads 1 — merge is thread-dependent",
							layout, name, i, b[i], th, a[i])
					}
				}
			}
		}
	}
}

// TestGroupHashSumOverflowCarriesKey mirrors the PR 5 direct-tier
// overflow pin on the hash tier: a group summing to 2^69 must surface
// *OverflowError carrying both the exact 128-bit total and the offending
// group's key — including the unpacked parts of a composite key.
func TestGroupHashSumOverflowCarriesKey(t *testing.T) {
	const n = 128
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		if i%2 == 0 {
			keys[i], vals[i] = 5, 1<<63 // 64 rows → sum 2^69
		} else {
			keys[i], vals[i] = 1029, 1 // needs 11 bits: hash tier
		}
	}
	for _, layout := range []Layout{VBP, HBP} {
		tbl := buildGroupTable(t, layout, layout, 11, 64, keys, vals)
		g := tbl.Query().GroupBy("g")
		if g.Strategy() != GroupHash {
			t.Fatalf("layout %v: strategy = %v, want hash", layout, g.Strategy())
		}
		_, err := g.SumContext(context.Background(), "v")
		var ov *OverflowError
		if !errors.As(err, &ov) {
			t.Fatalf("layout %v: SumContext = %v, want *OverflowError", layout, err)
		}
		if want := "590295810358705651712"; ov.Big().String() != want { // 64 · 2^63 = 2^69
			t.Fatalf("layout %v: overflow total = %s, want %s", layout, ov.Big().String(), want)
		}
		if len(ov.Group) != 1 || ov.Group[0] != 5 {
			t.Fatalf("layout %v: OverflowError.Group = %v, want [5]", layout, ov.Group)
		}
	}

	// Composite key: the error's Group must unpack to the per-column parts.
	g2 := make([]uint64, n)
	for i := range keys {
		if i%2 == 0 {
			keys[i], g2[i], vals[i] = 5, 9, 1<<63
		} else {
			keys[i], g2[i], vals[i] = 17, 33, 1
		}
	}
	tbl := NewTable()
	tbl.AddColumn("g", VBP, 6)
	tbl.AddColumn("g2", VBP, 6)
	tbl.AddColumn("v", VBP, 64)
	tbl.AppendColumnar(map[string][]uint64{"g": keys, "g2": g2, "v": vals})
	g := tbl.Query().GroupBy("g", "g2")
	if g.Strategy() != GroupHash {
		t.Fatalf("composite: strategy = %v, want hash", g.Strategy())
	}
	_, err := g.SumContext(context.Background(), "v")
	var ov *OverflowError
	if !errors.As(err, &ov) {
		t.Fatalf("composite: SumContext = %v, want *OverflowError", err)
	}
	if len(ov.Group) != 2 || ov.Group[0] != 5 || ov.Group[1] != 9 {
		t.Fatalf("composite: OverflowError.Group = %v, want [5 9]", ov.Group)
	}
}

// FuzzGroupHashBank is the hash tier's property check: for fuzz-chosen
// composite key widths past the direct tier, data shapes, layouts, and
// thread counts, the hash-banked partition must agree bit for bit with
// both the legacy per-key walk and a naive map-built oracle.
func FuzzGroupHashBank(f *testing.F) {
	f.Add(int64(1), uint16(500), uint8(11), uint8(3), uint8(12), uint8(0), uint8(1))
	f.Add(int64(2), uint16(2000), uint8(13), uint8(1), uint8(30), uint8(1), uint8(8))
	f.Add(int64(3), uint16(64), uint8(12), uint8(6), uint8(7), uint8(2), uint8(4))
	f.Add(int64(4), uint16(4000), uint8(11), uint8(4), uint8(16), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, kG1, kG2, kV, layouts, threads uint8) {
		if n == 0 {
			return
		}
		// First key column past DirectKeyBits so the hash tier is always
		// the one under test; a narrow second column keeps the composite
		// cardinality under the n ≤ 65535 row count.
		k1 := 11 + int(kG1)%3
		k2 := 1 + int(kG2)%6
		kv := 1 + int(kV)%32
		rng := rand.New(rand.NewSource(seed))
		g1 := make([]uint64, n)
		g2 := make([]uint64, n)
		vals := make([]uint64, n)
		for i := range g1 {
			g1[i] = rng.Uint64() & ((1 << k1) - 1)
			g2[i] = rng.Uint64() & ((1 << k2) - 1)
			vals[i] = rng.Uint64() & ((1 << kv) - 1)
		}
		lg, lv := VBP, VBP
		if layouts&1 != 0 {
			lg = HBP
		}
		if layouts&2 != 0 {
			lv = HBP
		}
		tbl := NewTable()
		tbl.AddColumn("g", lg, k1)
		tbl.AddColumn("g2", lg, k2)
		tbl.AddColumn("v", lv, kv)
		tbl.AppendColumnar(map[string][]uint64{"g": g1, "g2": g2, "v": vals})
		th := 1 + int(threads)%8

		// Naive oracle: map-accumulated per-composite-key tallies.
		type acc struct{ count, sum, min, max uint64 }
		m := map[uint64]*acc{}
		for i := range g1 {
			key := g1[i]<<uint(k2) | g2[i]
			a := m[key]
			if a == nil {
				a = &acc{min: ^uint64(0)}
				m[key] = a
			}
			a.count++
			a.sum += vals[i] // kv ≤ 32, n ≤ 65535: cannot overflow
			if vals[i] < a.min {
				a.min = vals[i]
			}
			if vals[i] > a.max {
				a.max = vals[i]
			}
		}
		wantKeys := make([]uint64, 0, len(m))
		for k := range m {
			wantKeys = append(wantKeys, k)
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })

		sp := tbl.Query().With(Parallel(th)).GroupBy("g", "g2")
		if sp.Strategy() != GroupHash {
			t.Fatalf("strategy = %v, want hash (k1=%d k2=%d)", sp.Strategy(), k1, k2)
		}
		ql := tbl.Query().With(Parallel(th))
		ql.Selection()
		legacy := ql.GroupBy("g", "g2")
		if legacy.SinglePass() {
			t.Fatal("materialized selection did not force the legacy walk")
		}

		for _, eng := range []struct {
			name string
			g    *Grouped
		}{{"hash", sp}, {"legacy", legacy}} {
			gotKeys := eng.g.Keys()
			if len(gotKeys) != len(wantKeys) {
				t.Fatalf("%s: %d keys, oracle %d", eng.name, len(gotKeys), len(wantKeys))
			}
			counts, sums := eng.g.Count(), eng.g.Sum("v")
			mins, maxs := eng.g.Min("v"), eng.g.Max("v")
			for i, k := range gotKeys {
				if k != wantKeys[i] {
					t.Fatalf("%s: key[%d] = %d, oracle %d", eng.name, i, k, wantKeys[i])
				}
				parts := eng.g.KeyParts(i)
				if len(parts) != 2 || parts[0] != k>>uint(k2) || parts[1] != k&((1<<k2)-1) {
					t.Fatalf("%s: KeyParts(%d) = %v for key %d", eng.name, i, parts, k)
				}
				a := m[k]
				if counts[i] != a.count || sums[i] != a.sum || mins[i] != a.min || maxs[i] != a.max {
					t.Fatalf("%s: group %d (key %d): count/sum/min/max = %d/%d/%d/%d, oracle %d/%d/%d/%d",
						eng.name, i, k, counts[i], sums[i], mins[i], maxs[i], a.count, a.sum, a.min, a.max)
				}
			}
		}
	})
}
